//! Sweep-kernel scaling grid: **rows × threads** up to 10⁶-row datasets.
//!
//! This is the acceptance harness for the parallel sweep kernel: for every
//! (dataset, scale) cell it builds the full unprojected evidence set with
//! [`SweepEvidenceBuilder`] at each thread count of the grid and records
//! wall-clock seconds plus the kernel's work counters
//! ([`adc_evidence::SweepStats`]): distinct classes, materialisations,
//! refinement steps, and how many classes took the single-family interval
//! fast path or the two-family rectangle path vs the multi-family
//! rank-token fallback.
//!
//! Two correctness gates run inside the bench (a speedup over a wrong
//! answer is not a speedup):
//!
//! * cells at or below [`VERIFY_MAX_ROWS`] are checked **canonically
//!   equal** against the sequential cluster kernel;
//! * at every scale, each thread count's output is checked **bit-for-bit
//!   identical** to the first thread count's (the deterministic
//!   chunk-merge guarantee).
//!
//! Class-incompressible datasets whose columns sort into **three or
//! more** order families (Tax, Hospital) fall back to
//! `O(active-columns · m)` refinement per class — quadratic overall — so
//! their largest scales are capped by [`fallback_scale_cap`]; skipped
//! cells are recorded in the JSON report rather than silently dropped.
//! Stock's columns collapse to exactly two families (the ticker hosts on
//! the price family), so it rides the wavelet rectangle path to 10⁶ rows.
//!
//! Results go to stdout and `BENCH_sweep_scale.json`. Environment:
//!
//! * `ADC_BENCH_DATASETS` — dataset subset (default: Tax, Hospital, Stock,
//!   the acceptance trio).
//! * `ADC_BENCH_SCALES` — comma-separated row scales (default
//!   `10000,100000,1000000`).
//! * `ADC_BENCH_THREAD_GRID` — comma-separated thread counts (default
//!   `1,2,4`).
//! * `ADC_BENCH_ASSERT_SPEEDUP` — when set, the best observed
//!   multi-thread speedup over the grid's first thread count must reach
//!   this factor (hard error otherwise; used by the `sweep-scale` CI
//!   smoke on multi-core runners — meaningless on one core).

use adc_bench::{object, parsed_env, parsed_env_list, raw_env, secs, write_report, Json, Table};
use adc_datasets::Dataset;
use adc_evidence::{ClusterEvidenceBuilder, EvidenceBuilder, SweepEvidenceBuilder};
use adc_predicates::{PredicateSpace, SpaceConfig};
use std::time::Instant;

/// Largest scale at which the sequential cluster kernel is still run as a
/// canonical-equality oracle (a pairwise scan beyond 10⁴ rows is ~10⁸+
/// materialisations of pure verification overhead).
const VERIFY_MAX_ROWS: usize = 10_000;

/// Largest scale attempted for datasets whose sweep goes through the
/// multi-family fallback on essentially every class (refinement is then
/// `O(m)` per class, quadratic overall when classes track rows). Measured:
/// Tax and Hospital at 10⁵ rows exceed nine minutes of fallback
/// refinement; 10⁶ would be ~10¹² rank-token steps. 2×10⁴ (the CI
/// parallel-speedup cell) stays tens of seconds.
const FALLBACK_MAX_ROWS: usize = 20_000;

/// Per-dataset scale cap. Determined empirically from the fallback share
/// reported by [`adc_evidence::SweepStats`] at 10⁴ rows: Tax and Hospital
/// sort their classes into three or more order families (household,
/// geography, salary, … orders), which keeps them off the two-family
/// rectangle path; Stock's two families run uncapped.
fn fallback_scale_cap(dataset: Dataset) -> usize {
    match dataset {
        Dataset::Tax | Dataset::Hospital => FALLBACK_MAX_ROWS,
        _ => usize::MAX,
    }
}

fn main() {
    let datasets = match raw_env("ADC_BENCH_DATASETS") {
        Some(_) => adc_bench::bench_datasets(),
        None => vec![Dataset::Tax, Dataset::Hospital, Dataset::Stock],
    };
    let scales = parsed_env_list("ADC_BENCH_SCALES", &[10_000usize, 100_000, 1_000_000]);
    let thread_grid = parsed_env_list("ADC_BENCH_THREAD_GRID", &[1usize, 2, 4]);
    assert!(
        !thread_grid.is_empty(),
        "ADC_BENCH_THREAD_GRID must name at least one thread count"
    );
    let assert_speedup: Option<f64> = parsed_env("ADC_BENCH_ASSERT_SPEEDUP");

    let mut table = Table::new(vec![
        "Dataset",
        "Rows",
        "Classes",
        "Sweep work",
        "Work ratio",
        "Fast-path %",
        "Threads:secs",
        "Speedup",
    ]);
    let mut cells: Vec<Json> = Vec::new();
    let mut skipped: Vec<Json> = Vec::new();
    let mut best_speedup = 0.0f64;

    for &rows in &scales {
        for &dataset in &datasets {
            if rows > fallback_scale_cap(dataset) {
                // No silent caps: the skip is part of the record.
                skipped.push(object(vec![
                    ("dataset", Json::from(dataset.name())),
                    ("rows", Json::from(rows)),
                    (
                        "reason",
                        Json::from(
                            "class-incompressible with ≥3 order families: the \
                             rank-token fallback is quadratic at this scale",
                        ),
                    ),
                ]));
                continue;
            }
            let relation = dataset.generator().generate(rows, 0xADC0 + dataset as u64);
            let space = PredicateSpace::build(&relation, SpaceConfig::default());

            let mut reference = None;
            let mut stats = None;
            let mut timings: Vec<(usize, f64)> = Vec::new();
            for &threads in &thread_grid {
                let t = Instant::now();
                let (evidence, s) = SweepEvidenceBuilder::new(threads.max(1))
                    .build_with_stats(&relation, &space, false);
                let elapsed = t.elapsed();
                timings.push((threads, elapsed.as_secs_f64()));
                // Bit-for-bit determinism across the whole thread grid.
                match &reference {
                    None => reference = Some(evidence),
                    Some(first) => assert_eq!(
                        &evidence,
                        first,
                        "{} @ {rows}: sweep output diverged at {threads} threads",
                        dataset.name()
                    ),
                }
                stats = Some(s);
            }
            // conformance: allow(panic) — the assert on ADC_BENCH_THREAD_GRID above guarantees at least one grid iteration
            let stats = stats.expect("thread grid is non-empty");
            // conformance: allow(panic) — same non-empty-grid guarantee as the line above
            let reference = reference.expect("thread grid is non-empty");

            // Canonical-equality oracle at verifiable scales.
            let verified = rows <= VERIFY_MAX_ROWS;
            if verified {
                let sequential = ClusterEvidenceBuilder.build(&relation, &space, false);
                assert_eq!(
                    sequential.canonicalized(),
                    reference.canonicalized(),
                    "{} @ {rows}: sweep kernel diverged from sequential",
                    dataset.name()
                );
            } else {
                // The total-multiplicity invariant still pins the sweep's
                // closed-form counts against the analytic pair count.
                assert_eq!(
                    reference.evidence_set.total_pairs(),
                    stats.pairwise_pairs,
                    "{} @ {rows}: sweep pair accounting diverged",
                    dataset.name()
                );
            }

            let base = timings[0].1;
            let cell_speedup = timings[1..]
                .iter()
                .map(|&(_, t)| base / t.max(1e-9))
                .fold(1.0f64, f64::max);
            best_speedup = best_speedup.max(cell_speedup);

            // Interval + rectangle classes: everything that avoided the
            // quadratic rank-token fallback.
            let fast_share = if stats.classes > 0 {
                (stats.interval_classes + stats.pair_classes) as f64 / stats.classes as f64
            } else {
                1.0
            };
            table.add_row(vec![
                dataset.name().to_string(),
                rows.to_string(),
                stats.classes.to_string(),
                stats.materializations.to_string(),
                format!("{:.1}", stats.materialization_ratio()),
                format!("{:.0}%", fast_share * 100.0),
                timings
                    .iter()
                    .map(|&(th, t)| format!("{th}:{}", secs(std::time::Duration::from_secs_f64(t))))
                    .collect::<Vec<_>>()
                    .join(" "),
                format!("{cell_speedup:.2}x"),
            ]);
            cells.push(object(vec![
                ("dataset", Json::from(dataset.name())),
                ("rows", Json::from(rows)),
                ("classes", Json::from(stats.classes)),
                ("class_grid", Json::from(stats.class_grid)),
                ("pairs", Json::from(stats.pairwise_pairs)),
                ("sweep_materializations", Json::from(stats.materializations)),
                ("refine_steps", Json::from(stats.refine_steps)),
                ("interval_classes", Json::from(stats.interval_classes)),
                ("pair_classes", Json::from(stats.pair_classes)),
                ("fallback_classes", Json::from(stats.fallback_classes)),
                ("work_ratio", Json::from(stats.materialization_ratio())),
                ("grid_ratio", Json::from(stats.grid_ratio())),
                (
                    "threads_s",
                    Json::Array(
                        timings
                            .iter()
                            .map(|&(th, t)| {
                                object(vec![
                                    ("threads", Json::from(th)),
                                    ("seconds", Json::from(t)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("speedup", Json::from(cell_speedup)),
                ("verified_against_sequential", Json::from(verified)),
            ]));
        }
    }

    table.print("Sweep kernel scaling: rows × threads");

    if let Some(min_speedup) = assert_speedup {
        assert!(
            thread_grid.len() >= 2,
            "ADC_BENCH_ASSERT_SPEEDUP needs a thread grid with ≥2 entries"
        );
        assert!(
            best_speedup >= min_speedup,
            "best parallel sweep speedup {best_speedup:.2}x below the required \
             {min_speedup}x (thread grid {thread_grid:?}; is this a multi-core \
             machine?)"
        );
        println!("\nspeedup gate passed: best {best_speedup:.2}x >= required {min_speedup}x");
    }

    let report = object(vec![
        ("bench", Json::from("sweep_scale")),
        (
            "thread_grid",
            Json::Array(thread_grid.iter().map(|&t| Json::from(t)).collect()),
        ),
        ("verify_max_rows", Json::from(VERIFY_MAX_ROWS)),
        ("best_speedup", Json::from(best_speedup)),
        ("cells", Json::Array(cells)),
        ("skipped", Json::Array(skipped)),
    ]);
    let path = write_report("sweep_scale", &report);
    println!("\nrecorded {}", path.display());
}
