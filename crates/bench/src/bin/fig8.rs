//! Figure 8: ADCMiner runtime split per approximation function —
//! total time, enumeration time, and evidence-construction time for
//! f1, f2, and f3 on every dataset (ε = 0.1).

use adc_approx::ApproxKind;
use adc_bench::{
    bench_config, bench_datasets, bench_relation, object, run_miner, secs, write_report, Json,
    Table,
};

fn main() {
    let epsilon = 0.1;
    let mut sections: Vec<Json> = Vec::new();
    for section in ["total", "enumeration", "evidence"] {
        let mut table = Table::new(vec!["Dataset", "f1 (s)", "f2 (s)", "f3 (s)"]);
        for dataset in bench_datasets() {
            let relation = bench_relation(dataset);
            let mut cells = vec![dataset.name().to_string()];
            for kind in ApproxKind::ALL {
                let result = run_miner(&relation, bench_config(epsilon).with_approx(kind));
                let duration = match section {
                    "total" => result.timings.total(),
                    "enumeration" => result.timings.enumeration,
                    _ => result.timings.evidence,
                };
                cells.push(secs(duration));
            }
            table.add_row(cells);
        }
        table.print(&format!(
            "Figure 8 — ADCMiner {section} time per approximation function (ε = 0.1)"
        ));
        sections.push(table.report(section));
    }
    let report = object(vec![
        ("bench", Json::from("fig8")),
        ("sections", Json::Array(sections)),
    ]);
    let path = write_report("fig8", &report);
    println!("recorded {}", path.display());
}
