//! Tractability probe: mines every dataset over its **unprojected** predicate
//! space (the full `SpaceConfig::default()` space — same-column, cross-column,
//! and single-tuple predicates) at the generator's default row count and
//! reports how large the output is.
//!
//! This is the gate for running the fig/table binaries at paper-scale rows:
//! the generators must keep the minimal-ADC count of their *clean* relations
//! in the hundreds-to-thousands, not the hundreds of thousands. The recorded
//! before/after table lives in this crate's `README.md`.
//!
//! Environment variables: the usual `ADC_BENCH_ROWS` / `ADC_BENCH_DATASETS` /
//! `ADC_BENCH_THREADS`, plus `ADC_TRACT_CAP` (default 20000) — the cap on
//! emitted DCs so a still-intractable generator terminates with `>cap`
//! instead of hanging.

use adc_bench::{
    bench_datasets, bench_relation, bench_rows, bench_shortest_first_config, object, parsed_env,
    secs, write_report, Json, Table,
};
use adc_core::metrics::g_recall;
use adc_core::AdcMiner;

fn main() {
    // `parsed_env` upgrades a malformed ADC_TRACT_CAP from a silent default
    // to the harness-wide hard-error contract.
    let cap: usize = parsed_env("ADC_TRACT_CAP").unwrap_or(20_000);
    let epsilon = 1e-6;
    let mut table = Table::new(vec![
        "Dataset",
        "Rows",
        "|Space|",
        "Distinct evidence",
        "Minimal ADCs",
        "Golden recall",
        "Time (s)",
    ]);
    let mut rows_json: Vec<Json> = Vec::new();
    for dataset in bench_datasets() {
        let generator = dataset.generator();
        let rows = bench_rows(dataset);
        let relation = bench_relation(dataset);
        let start = std::time::Instant::now();
        // Shortest-first so a still-intractable generator's `>cap` row shows
        // the shortest frontier, and the truncation flag is authoritative.
        let result =
            AdcMiner::new(bench_shortest_first_config(epsilon).with_max_dcs(cap)).mine(&relation);
        let elapsed = start.elapsed();
        let golden = generator.golden_dcs(&result.space);
        let recall = g_recall(&result.dcs, &golden);
        let count = match result.truncation {
            // The cap filled: the true frontier is larger than shown.
            Some(_) if result.dcs.len() >= cap => format!(">{cap}"),
            // Cut early by the raw-cover headroom (mostly-trivial covers):
            // the run stopped with fewer than `cap` minimal ADCs in hand.
            Some(_) => format!("≥{} (cut)", result.dcs.len()),
            None => result.dcs.len().to_string(),
        };
        rows_json.push(object(vec![
            ("dataset", Json::from(generator.name())),
            ("rows", Json::from(rows)),
            ("space", Json::from(result.space.len())),
            ("distinct_evidence", Json::from(result.distinct_evidence)),
            ("minimal_adcs", Json::from(result.dcs.len())),
            ("truncated", Json::from(result.truncation.is_some())),
            ("golden_recall", Json::from(recall)),
            ("golden_total", Json::from(golden.len())),
            ("seconds", Json::from(elapsed.as_secs_f64())),
        ]));
        table.add_row(vec![
            generator.name().to_string(),
            rows.to_string(),
            result.space.len().to_string(),
            result.distinct_evidence.to_string(),
            count,
            format!(
                "{:.2} ({}/{})",
                recall,
                (recall * golden.len() as f64).round(),
                golden.len()
            ),
            secs(elapsed),
        ]);
    }
    table.print("Tractability — unprojected predicate space, clean data");
    let report = object(vec![
        ("report", Json::from("tractability")),
        ("epsilon", Json::from(epsilon)),
        ("cap", Json::from(cap)),
        ("datasets", Json::Array(rows_json)),
    ]);
    let path = write_report("tractability", &report);
    println!("recorded {}", path.display());
}
