//! Figure 14: G-recall of the golden DCs for varying thresholds
//! (10⁻⁶ … 10⁻¹) under f1, f2, and f3, on datasets dirtied with *spread*
//! noise and with *skewed* (error-concentrated) noise. The G-recall of exact
//! mining (ε = 0) is reported alongside, as in the paper's parentheses.
//!
//! Set `ADC_BENCH_SLICE_NODES` to run every mine in **resume-in-slices**
//! mode (node-budget slices resumed via the engine's suspend token): the
//! recall numbers are identical by the cut-and-resume determinism
//! guarantee, while each slice's peak memory stays bounded by the frontier
//! it holds — the operating mode for long dirty mines on shared machines.

use adc_approx::ApproxKind;
use adc_bench::{
    bench_datasets, bench_relation, bench_shortest_first_config, object, run_miner, write_report,
    Json, Table,
};
use adc_core::g_recall;
use adc_datasets::{targeted_skewed_noise, targeted_spread_noise, NoiseConfig};

fn main() {
    let thresholds = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1];
    let noise = NoiseConfig::with_rate(0.002);

    let mut sections: Vec<Json> = Vec::new();
    for (noise_name, skewed) in [("spread", false), ("skewed", true)] {
        for kind in ApproxKind::ALL {
            let mut table = Table::new(
                std::iter::once("Dataset".to_string())
                    .chain(thresholds.iter().map(|t| format!("ε={t:.0e}")))
                    .chain(std::iter::once("ε=0 (exact)".to_string()))
                    .collect::<Vec<_>>(),
            );
            for dataset in bench_datasets() {
                let generator = dataset.generator();
                let clean = bench_relation(dataset);
                let spec = generator.correlation();
                let (dirty, _) = if skewed {
                    targeted_skewed_noise(&clean, &spec, &noise, 0xBAD)
                } else {
                    targeted_spread_noise(&clean, &spec, &noise, 0xBAD)
                };
                let mut cells = vec![dataset.name().to_string()];
                // Shortest-first enumeration: when `ADC_BENCH_MAX_DCS` bites
                // on a dirty run, the kept DCs are the shortest frontier, so
                // the recall numbers are representative rather than
                // DFS-order-dependent.
                let golden_recall = |epsilon: f64| {
                    let result = run_miner(
                        &dirty,
                        bench_shortest_first_config(epsilon).with_approx(kind),
                    );
                    let golden = generator.golden_dcs(&result.space);
                    format!("{:.2}", g_recall(&result.dcs, &golden))
                };
                for &epsilon in &thresholds {
                    cells.push(golden_recall(epsilon));
                }
                cells.push(golden_recall(0.0));
                table.add_row(cells);
            }
            table.print(&format!(
                "Figure 14 — G-recall vs threshold under {kind}, {noise_name} noise"
            ));
            sections.push(table.report(&format!("{kind}/{noise_name}")));
        }
    }
    let report = object(vec![
        ("bench", Json::from("fig14")),
        ("sections", Json::Array(sections)),
    ]);
    let path = write_report("fig14", &report);
    println!("recorded {}", path.display());
}
