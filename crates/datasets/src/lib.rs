//! # adc-datasets
//!
//! Synthetic analogs of the eight datasets used in the evaluation of
//! *"Approximate Denial Constraints"* (VLDB 2020), plus the paper's running
//! example (Table 1), golden DCs, and the two noise models of Section 8.4.
//!
//! The original files (Tax, SP Stock, Hospital, Food Inspection, Airport,
//! Adult, Flight, NCVoter) are not redistributable, so each module here
//! generates a relation with the same schema shape (attribute count and type
//! mix), the same kinds of semantic rules (the *golden DCs* the paper's
//! experts provided), and configurable cardinality. Every golden DC holds on
//! the clean generated data **by construction**; the noise injectors then
//! produce the "dirty" variants the qualitative analysis of the paper uses.
//!
//! See `ARCHITECTURE.md` at the workspace root for the substitution
//! rationale.
//!
//! ```
//! use adc_datasets::{running_example, Dataset};
//!
//! // Table 1 of the paper: 15 tax records with planted inconsistencies.
//! let table1 = running_example();
//! assert_eq!(table1.len(), 15);
//!
//! // A synthetic Stock analog at any cardinality, deterministic in the seed.
//! let stock = Dataset::Stock.generator().generate(50, 7);
//! assert_eq!(stock.len(), 50);
//! let again = Dataset::Stock.generator().generate(50, 7);
//! assert_eq!(stock.preview(50), again.preview(50));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod datasets;
pub mod generator;
pub mod noise;
pub mod running_example;

pub use catalog::Dataset;
pub use generator::{CorrelationSpec, DatasetGenerator, Fd, Forbidden, Key, Monotone};
pub use noise::{
    skewed_noise, spread_noise, targeted_skewed_noise, targeted_spread_noise, NoiseConfig,
};
pub use running_example::{phi1, phi2, running_example};
