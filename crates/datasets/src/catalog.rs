//! The catalog of all eight evaluation datasets (Table 4 of the paper).

use crate::datasets::{
    AdultDataset, AirportDataset, FlightDataset, FoodDataset, HospitalDataset, StockDataset,
    TaxDataset, VoterDataset,
};
use crate::generator::DatasetGenerator;
use std::fmt;

/// The eight datasets of the paper's evaluation (Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Synthetic person-level tax records (the paper's only synthetic dataset).
    Tax,
    /// SP Stock daily bars.
    Stock,
    /// Hospital quality measures.
    Hospital,
    /// Food inspections.
    Food,
    /// Airports.
    Airport,
    /// Adult census income.
    Adult,
    /// Flight legs.
    Flight,
    /// NC voter registrations.
    Voter,
}

impl Dataset {
    /// All datasets, in the order of Table 4.
    pub const ALL: [Dataset; 8] = [
        Dataset::Tax,
        Dataset::Stock,
        Dataset::Hospital,
        Dataset::Food,
        Dataset::Airport,
        Dataset::Adult,
        Dataset::Flight,
        Dataset::Voter,
    ];

    /// Instantiate the generator for this dataset.
    pub fn generator(self) -> Box<dyn DatasetGenerator> {
        match self {
            Dataset::Tax => Box::new(TaxDataset),
            Dataset::Stock => Box::new(StockDataset),
            Dataset::Hospital => Box::new(HospitalDataset),
            Dataset::Food => Box::new(FoodDataset),
            Dataset::Airport => Box::new(AirportDataset),
            Dataset::Adult => Box::new(AdultDataset),
            Dataset::Flight => Box::new(FlightDataset),
            Dataset::Voter => Box::new(VoterDataset),
        }
    }

    /// Dataset name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Tax => "Tax",
            Dataset::Stock => "Stock",
            Dataset::Hospital => "Hospital",
            Dataset::Food => "Food",
            Dataset::Airport => "Airport",
            Dataset::Adult => "Adult",
            Dataset::Flight => "Flight",
            Dataset::Voter => "Voter",
        }
    }

    /// Parse a dataset name (case-insensitive).
    pub fn parse(name: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name.trim()))
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_consistent() {
        assert_eq!(Dataset::ALL.len(), 8);
        for d in Dataset::ALL {
            let gen = d.generator();
            assert_eq!(gen.name(), d.name());
            assert!(gen.default_rows() > 0);
            assert!(gen.paper_rows() > gen.default_rows());
            assert!(gen.paper_golden_dcs() > 0);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
            assert_eq!(Dataset::parse(&d.name().to_lowercase()), Some(d));
        }
        assert_eq!(Dataset::parse("nope"), None);
        assert_eq!(Dataset::parse(" tax "), Some(Dataset::Tax));
        assert_eq!(Dataset::Tax.to_string(), "Tax");
    }
}
