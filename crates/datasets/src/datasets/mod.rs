//! One module per synthetic dataset analog.
//!
//! Every generator produces a clean relation on which its golden DCs hold by
//! construction; the per-dataset tests verify exactly that, and the harness
//! dirties the data with the noise models of [`crate::noise`] before mining.

pub mod adult;
pub mod airport;
pub mod flight;
pub mod food;
pub mod hospital;
pub mod stock;
pub mod tax;
pub mod voter;

pub use adult::AdultDataset;
pub use airport::AirportDataset;
pub use flight::FlightDataset;
pub use food::FoodDataset;
pub use hospital::HospitalDataset;
pub use stock::StockDataset;
pub use tax::TaxDataset;
pub use voter::VoterDataset;

#[cfg(test)]
mod shared_tests {
    use crate::catalog::Dataset;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    /// Every dataset: schema arity matches the paper's attribute count, the
    /// generator is deterministic, and all golden DCs are valid on clean data.
    #[test]
    fn all_generators_produce_clean_data_satisfying_their_golden_dcs() {
        for dataset in Dataset::ALL {
            let gen = dataset.generator();
            let rows = 80;
            let relation = gen.generate(rows, 7);
            assert_eq!(relation.len(), rows, "{}", gen.name());
            assert_eq!(relation.arity(), gen.schema().arity(), "{}", gen.name());
            // Determinism.
            let again = gen.generate(rows, 7);
            for col in 0..relation.arity() {
                for row in [0usize, rows / 2, rows - 1] {
                    assert!(
                        relation.value(row, col).sem_eq(&again.value(row, col))
                            || (relation.value(row, col).is_null()
                                && again.value(row, col).is_null()),
                        "{} not deterministic at ({row},{col})",
                        gen.name()
                    );
                }
            }
            let space = PredicateSpace::build(&relation, SpaceConfig::default());
            let golden = gen.golden_dcs(&space);
            assert!(
                !golden.is_empty(),
                "{}: no golden DCs resolved against the predicate space",
                gen.name()
            );
            for dc in &golden {
                assert_eq!(
                    dc.count_violations(&space, &relation),
                    0,
                    "{}: golden DC {} violated on clean data",
                    gen.name(),
                    dc.display(&space)
                );
            }
        }
    }

    /// The paper-reported metadata stays in sync with Table 4.
    #[test]
    fn paper_metadata_matches_table_4() {
        use Dataset::*;
        let expected = [
            (Tax, 1_000_000, 15, 9),
            (Stock, 123_000, 7, 6),
            (Hospital, 115_000, 19, 7),
            (Food, 200_000, 17, 10),
            (Airport, 55_000, 12, 9),
            (Adult, 32_000, 15, 3),
            (Flight, 582_000, 20, 13),
            (Voter, 950_000, 25, 12),
        ];
        for (dataset, rows, attrs, golden) in expected {
            let gen = dataset.generator();
            assert_eq!(gen.paper_rows(), rows, "{}", gen.name());
            assert_eq!(gen.schema().arity(), attrs, "{}", gen.name());
            assert_eq!(gen.paper_golden_dcs(), golden, "{}", gen.name());
        }
    }
}
