//! Synthetic analog of the **Food Inspection** dataset (200 K tuples,
//! 17 attributes, 10 golden DCs). One row per inspection of a licensed
//! facility; facility-level attributes repeat across inspections.

use crate::generator::{pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Food Inspection analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct FoodDataset;

impl DatasetGenerator for FoodDataset {
    fn name(&self) -> &'static str {
        "Food"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("InspectionID", AttributeType::Integer),
            ("LicenseNo", AttributeType::Integer),
            ("DBAName", AttributeType::Text),
            ("AKAName", AttributeType::Text),
            ("FacilityType", AttributeType::Text),
            ("Risk", AttributeType::Text),
            ("Address", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("Ward", AttributeType::Integer),
            ("InspectionYear", AttributeType::Integer),
            ("InspectionType", AttributeType::Text),
            ("Results", AttributeType::Text),
            ("ViolationCount", AttributeType::Integer),
            ("Latitude", AttributeType::Float),
            ("Longitude", AttributeType::Float),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        200_000
    }

    fn paper_golden_dcs(&self) -> usize {
        10
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let num_facilities = (rows / 5).max(1);
        let risks = ["Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"];
        let inspection_types = ["Canvass", "Complaint", "License", "Re-inspection"];
        let results = ["Pass", "Fail", "Pass w/ Conditions"];
        // Facility-level attributes, fixed per license number.
        let facilities: Vec<(usize, usize, usize, usize)> = (0..num_facilities)
            .map(|_| {
                (
                    rng.gen_range(0..pools::STATES.len()),
                    rng.gen_range(0..2usize),
                    rng.gen_range(0..pools::FACILITY_TYPES.len()),
                    rng.gen_range(0..risks.len()),
                )
            })
            .collect();
        for i in 0..rows {
            let fid = i % num_facilities;
            let (state_idx, city_sel, ftype, risk) = facilities[fid];
            let city_idx = state_idx * 2 + city_sel;
            let zip =
                pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + (fid as i64 % 700);
            let ward = 1 + (zip % 50);
            b.push_row(vec![
                Value::Int(1_000_000 + i as i64),
                Value::Int(200_000 + fid as i64),
                Value::from(format!("Food Place {fid}")),
                Value::from(format!("FP {fid}")),
                Value::from(pools::FACILITY_TYPES[ftype]),
                Value::from(risks[risk]),
                Value::from(format!("{} Oak Ave", 10 + fid)),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::Int(ward),
                Value::Int(2_015 + rng.gen_range(0..6)),
                Value::from(inspection_types[rng.gen_range(0..inspection_types.len())]),
                Value::from(results[rng.gen_range(0..results.len())]),
                Value::Int(rng.gen_range(0..15)),
                Value::Float(40.0 + (fid % 90) as f64 / 100.0),
                Value::Float(-87.0 - (fid % 90) as f64 / 100.0),
            ])
            .expect("food rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // Inspection id is a key.
                &[("InspectionID", "=", Other, "InspectionID")],
                // Zip codes do not cross states or cities.
                &[("Zip", "=", Other, "Zip"), ("State", "≠", Other, "State")],
                &[("Zip", "=", Other, "Zip"), ("City", "≠", Other, "City")],
                // The license number determines the facility-level attributes.
                &[
                    ("LicenseNo", "=", Other, "LicenseNo"),
                    ("DBAName", "≠", Other, "DBAName"),
                ],
                &[
                    ("LicenseNo", "=", Other, "LicenseNo"),
                    ("FacilityType", "≠", Other, "FacilityType"),
                ],
                &[
                    ("LicenseNo", "=", Other, "LicenseNo"),
                    ("Address", "≠", Other, "Address"),
                ],
                &[
                    ("LicenseNo", "=", Other, "LicenseNo"),
                    ("Risk", "≠", Other, "Risk"),
                ],
                // The doing-business-as name determines the also-known-as name.
                &[
                    ("DBAName", "=", Other, "DBAName"),
                    ("AKAName", "≠", Other, "AKAName"),
                ],
                // An address has a single zip code and a single ward.
                &[
                    ("Address", "=", Other, "Address"),
                    ("Zip", "≠", Other, "Zip"),
                ],
                &[
                    ("Address", "=", Other, "Address"),
                    ("Ward", "≠", Other, "Ward"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_seventeen_attributes() {
        assert_eq!(FoodDataset.schema().arity(), 17);
    }

    #[test]
    fn all_ten_golden_dcs_resolve() {
        let r = FoodDataset.generate(150, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(FoodDataset.golden_dcs(&space).len(), 10);
    }

    #[test]
    fn inspection_id_is_unique() {
        let r = FoodDataset.generate(200, 8);
        let id_col = FoodDataset.schema().index_of("InspectionID").unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for row in 0..r.len() {
            assert!(seen.insert(r.value(row, id_col).as_i64().unwrap()));
        }
    }

    #[test]
    fn license_determines_facility_attributes() {
        let r = FoodDataset.generate(120, 2);
        let schema = FoodDataset.schema();
        let lic = schema.index_of("LicenseNo").unwrap();
        let dba = schema.index_of("DBAName").unwrap();
        use std::collections::HashMap;
        let mut by_license: HashMap<i64, String> = HashMap::new();
        for row in 0..r.len() {
            let l = r.value(row, lic).as_i64().unwrap();
            let name = r.value(row, dba).to_string();
            if let Some(prev) = by_license.get(&l) {
                assert_eq!(prev, &name);
            } else {
                by_license.insert(l, name);
            }
        }
    }
}
