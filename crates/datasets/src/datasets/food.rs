//! Synthetic analog of the **Food Inspection** dataset (200 K tuples,
//! 17 attributes, 10 golden DCs). One row per inspection of a licensed
//! facility; facility-level attributes repeat across inspections.
//!
//! Correlation model: the facility (license number) is the master driver —
//! name, type, risk, address, geography, ward, and coordinates are all
//! deterministic functions of it, with the ward derived from the zip code.
//! Inspection-level attributes derive from two small drivers: the inspection
//! round (year) and the violation count (which fixes the result).

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Key};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Food Inspection analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct FoodDataset;

impl DatasetGenerator for FoodDataset {
    fn name(&self) -> &'static str {
        "Food"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("InspectionID", AttributeType::Integer),
            ("LicenseNo", AttributeType::Integer),
            ("DBAName", AttributeType::Text),
            ("AKAName", AttributeType::Text),
            ("FacilityType", AttributeType::Text),
            ("Risk", AttributeType::Text),
            ("Address", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("Ward", AttributeType::Integer),
            ("InspectionYear", AttributeType::Integer),
            ("InspectionType", AttributeType::Text),
            ("Results", AttributeType::Text),
            ("ViolationCount", AttributeType::Integer),
            ("Latitude", AttributeType::Float),
            ("Longitude", AttributeType::Float),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        200_000
    }

    fn paper_golden_dcs(&self) -> usize {
        10
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let num_facilities = (rows / 5).max(1);
        let risks = ["Risk 1 (High)", "Risk 2 (Medium)"];
        let inspection_types = ["Canvass", "Complaint", "License", "Re-inspection"];
        for i in 0..rows {
            // Facility driver: fixes every facility-level attribute through
            // nested graded buckets (laminar chain 2 | 4 | 8 | 16 | 48), so
            // the pair pattern of the facility block is just the finest
            // level at which two facilities agree, times the facility order.
            let fid = i % num_facilities;
            let state_idx = bucket(fid, num_facilities, pools::STATES.len());
            let city_sel = bucket(fid, num_facilities, 16) % 2;
            let city_idx = state_idx * 2 + city_sel;
            let geo48 = bucket(fid, num_facilities, 48);
            let zip_block = geo48 % 3;
            let zip =
                pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + zip_block as i64 * 30;
            // Ward range kept clear of the small count/year domains so the
            // shared-values rule never compares it with them; one ward per
            // zip, so the ward order follows the geography.
            let ward = 130 + geo48 as i64;
            // Inspection drivers: the round (which fixes year and inspection
            // type) and the violation count (which fixes the result).
            let round = i / num_facilities;
            let violations = rng.gen_range(0..5i64);
            let results = match violations {
                0 => "Pass",
                1 | 2 => "Pass w/ Conditions",
                _ => "Fail",
            };
            b.push_row(vec![
                Value::Int(1_000_000 + i as i64),
                Value::Int(200_000 + fid as i64),
                Value::from(format!("Food Place {fid}")),
                Value::from(format!("FP {fid}")),
                Value::from(pools::FACILITY_TYPES[bucket(fid, num_facilities, 4)]),
                Value::from(risks[bucket(fid, num_facilities, 2)]),
                Value::from(format!("{} Oak Ave", 10 + fid)),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::Int(ward),
                Value::Int(2_015 + round as i64 % 6),
                Value::from(inspection_types[bucket(round % 6, 6, 4)]),
                Value::from(results),
                Value::Int(violations),
                Value::Float(40.0 + geo48 as f64 / 100.0),
                Value::Float(-87.0 - geo48 as f64 / 100.0),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("food rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            keys: vec![Key {
                attr: "InspectionID",
                golden: true,
            }],
            hierarchies: vec![&["Zip", "City", "State"]],
            fds: vec![
                // Golden set (Table 4: key + 9 FD-style rules).
                Fd {
                    lhs: &["Zip"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "City",
                    golden: true,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "DBAName",
                    golden: true,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "FacilityType",
                    golden: true,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "Address",
                    golden: true,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "Risk",
                    golden: true,
                },
                Fd {
                    lhs: &["DBAName"],
                    rhs: "AKAName",
                    golden: true,
                },
                Fd {
                    lhs: &["Address"],
                    rhs: "Zip",
                    golden: true,
                },
                Fd {
                    lhs: &["Address"],
                    rhs: "Ward",
                    golden: true,
                },
                // Structural (non-golden) facility-level FDs.
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "City",
                    golden: false,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "Zip",
                    golden: false,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "Ward",
                    golden: false,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "Latitude",
                    golden: false,
                },
                Fd {
                    lhs: &["LicenseNo"],
                    rhs: "Longitude",
                    golden: false,
                },
                Fd {
                    lhs: &["ViolationCount"],
                    rhs: "Results",
                    golden: false,
                },
            ],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_seventeen_attributes() {
        assert_eq!(FoodDataset.schema().arity(), 17);
    }

    #[test]
    fn all_ten_golden_dcs_resolve() {
        let r = FoodDataset.generate(150, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(FoodDataset.correlation().golden_count(), 10);
        assert_eq!(FoodDataset.golden_dcs(&space).len(), 10);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = FoodDataset.generate(300, 4);
        FoodDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn inspection_id_is_unique() {
        let r = FoodDataset.generate(200, 8);
        let id_col = FoodDataset.schema().index_of("InspectionID").unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for row in 0..r.len() {
            assert!(seen.insert(r.value(row, id_col).as_i64().unwrap()));
        }
    }

    #[test]
    fn license_determines_facility_attributes() {
        let r = FoodDataset.generate(120, 2);
        let schema = FoodDataset.schema();
        let lic = schema.index_of("LicenseNo").unwrap();
        let dba = schema.index_of("DBAName").unwrap();
        use std::collections::HashMap;
        let mut by_license: HashMap<i64, String> = HashMap::new();
        for row in 0..r.len() {
            let l = r.value(row, lic).as_i64().unwrap();
            let name = r.value(row, dba).to_string();
            if let Some(prev) = by_license.get(&l) {
                assert_eq!(prev, &name);
            } else {
                by_license.insert(l, name);
            }
        }
    }
}
