//! Synthetic analog of the **NCVoter** dataset (950 K tuples, 25 attributes,
//! 12 golden DCs). One row per registered voter; address and demographic
//! attributes obey the usual geographic and age/birth-year consistency rules.

use crate::generator::{pick, pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the NCVoter analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct VoterDataset;

/// Reference year used to derive `BirthYear` from `Age`.
const REFERENCE_YEAR: i64 = 2020;

impl DatasetGenerator for VoterDataset {
    fn name(&self) -> &'static str {
        "Voter"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("VoterID", AttributeType::Integer),
            ("FirstName", AttributeType::Text),
            ("MiddleName", AttributeType::Text),
            ("LastName", AttributeType::Text),
            ("Age", AttributeType::Integer),
            ("BirthYear", AttributeType::Integer),
            ("Gender", AttributeType::Text),
            ("RegYear", AttributeType::Integer),
            ("Party", AttributeType::Text),
            ("Status", AttributeType::Text),
            ("County", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("Street", AttributeType::Text),
            ("HouseNumber", AttributeType::Integer),
            ("Precinct", AttributeType::Integer),
            ("District", AttributeType::Integer),
            ("Ward", AttributeType::Integer),
            ("Ethnicity", AttributeType::Text),
            ("MailCity", AttributeType::Text),
            ("MailState", AttributeType::Text),
            ("MailZip", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        950_000
    }

    fn paper_golden_dcs(&self) -> usize {
        12
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let statuses = ["Active", "Inactive", "Removed"];
        let ethnicities = ["NL", "HL", "UN"];
        let streets = ["Main St", "Oak Ave", "Pine Rd", "Maple Dr", "Cedar Ln"];
        for i in 0..rows {
            let state_idx = rng.gen_range(0..pools::STATES.len());
            let city_sel = rng.gen_range(0..2usize);
            let city_idx = state_idx * 2 + city_sel;
            let age = rng.gen_range(18..=95i64);
            let zip =
                pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + rng.gen_range(0..800);
            let area_code = pools::state_area_code(state_idx);
            // Precinct / district / ward are county-scoped identifiers.
            let precinct = (city_idx as i64) * 100 + rng.gen_range(0..100);
            b.push_row(vec![
                Value::Int(i as i64),
                Value::from(*pick(&mut rng, &pools::FIRST_NAMES)),
                Value::from(if rng.gen_bool(0.3) { "J" } else { "M" }),
                Value::from(*pick(&mut rng, &pools::LAST_NAMES)),
                Value::Int(age),
                Value::Int(REFERENCE_YEAR - age),
                Value::from(if rng.gen_bool(0.5) { "F" } else { "M" }),
                Value::Int(REFERENCE_YEAR - rng.gen_range(0..=age.min(40))),
                Value::from(*pick(&mut rng, &pools::PARTIES)),
                Value::from(statuses[rng.gen_range(0..statuses.len())]),
                Value::from(pools::COUNTIES[city_idx]),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::Int(area_code),
                Value::Int(area_code * 10_000_000 + i as i64),
                Value::from(streets[rng.gen_range(0..streets.len())]),
                Value::Int(rng.gen_range(1..9_999)),
                Value::Int(precinct),
                Value::Int(1 + (precinct % 13)),
                Value::Int(1 + (precinct % 9)),
                Value::from(ethnicities[rng.gen_range(0..ethnicities.len())]),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
            ])
            .expect("voter rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // The voter id is a key.
                &[("VoterID", "=", Other, "VoterID")],
                // Residential geography is consistent.
                &[("Zip", "=", Other, "Zip"), ("State", "≠", Other, "State")],
                &[("Zip", "=", Other, "Zip"), ("City", "≠", Other, "City")],
                &[("Zip", "=", Other, "Zip"), ("County", "≠", Other, "County")],
                &[
                    ("City", "=", Other, "City"),
                    ("County", "≠", Other, "County"),
                ],
                &[
                    ("County", "=", Other, "County"),
                    ("State", "≠", Other, "State"),
                ],
                // Age and birth year are consistent.
                &[
                    ("Age", "<", Other, "Age"),
                    ("BirthYear", "<", Other, "BirthYear"),
                ],
                &[
                    ("Age", "=", Other, "Age"),
                    ("BirthYear", "≠", Other, "BirthYear"),
                ],
                // Phone numbers embed state-scoped area codes.
                &[
                    ("AreaCode", "=", Other, "AreaCode"),
                    ("State", "≠", Other, "State"),
                ],
                &[
                    ("Phone", "=", Other, "Phone"),
                    ("AreaCode", "≠", Other, "AreaCode"),
                ],
                // Precincts are county-scoped; mailing geography is consistent.
                &[
                    ("Precinct", "=", Other, "Precinct"),
                    ("County", "≠", Other, "County"),
                ],
                &[
                    ("MailZip", "=", Other, "MailZip"),
                    ("MailState", "≠", Other, "MailState"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_twenty_five_attributes() {
        assert_eq!(VoterDataset.schema().arity(), 25);
    }

    #[test]
    fn all_twelve_golden_dcs_resolve() {
        let r = VoterDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(VoterDataset.golden_dcs(&space).len(), 12);
    }

    #[test]
    fn registration_is_not_before_birth() {
        let r = VoterDataset.generate(200, 6);
        let schema = VoterDataset.schema();
        let by = schema.index_of("BirthYear").unwrap();
        let reg = schema.index_of("RegYear").unwrap();
        for row in 0..r.len() {
            assert!(r.value(row, reg).as_i64().unwrap() >= r.value(row, by).as_i64().unwrap());
        }
    }

    #[test]
    fn precinct_is_county_scoped() {
        let r = VoterDataset.generate(250, 8);
        let schema = VoterDataset.schema();
        let precinct = schema.index_of("Precinct").unwrap();
        let county = schema.index_of("County").unwrap();
        use std::collections::HashMap;
        let mut map: HashMap<i64, String> = HashMap::new();
        for row in 0..r.len() {
            let p = r.value(row, precinct).as_i64().unwrap();
            let c = r.value(row, county).to_string();
            if let Some(prev) = map.get(&p) {
                assert_eq!(prev, &c);
            } else {
                map.insert(p, c);
            }
        }
    }
}
