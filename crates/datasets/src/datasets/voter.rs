//! Synthetic analog of the **NCVoter** dataset (950 K tuples, 25 attributes,
//! 12 golden DCs). One row per registered voter; address and demographic
//! attributes obey the usual geographic and age/birth-year consistency rules.
//!
//! Correlation model: rows belong to *households* (≈ rows/2) that fix the
//! entire geographic block — state, city, county, zip, area code, phone,
//! street, house number, precinct, district, ward, and the mailing address
//! (which mirrors the residential one). Zip, area code, and phone orders are
//! aligned with the state index and household id. Person-level attributes
//! derive from three small drivers: an age bracket (→ birth year and
//! registration year), a first-name index (→ gender), and a party index
//! (→ status, ethnicity).

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Key, Monotone};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the NCVoter analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct VoterDataset;

/// Reference year used to derive `BirthYear` from `Age`.
const REFERENCE_YEAR: i64 = 2020;

impl DatasetGenerator for VoterDataset {
    fn name(&self) -> &'static str {
        "Voter"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("VoterID", AttributeType::Integer),
            ("FirstName", AttributeType::Text),
            ("MiddleName", AttributeType::Text),
            ("LastName", AttributeType::Text),
            ("Age", AttributeType::Integer),
            ("BirthYear", AttributeType::Integer),
            ("Gender", AttributeType::Text),
            ("RegYear", AttributeType::Integer),
            ("Party", AttributeType::Text),
            ("Status", AttributeType::Text),
            ("County", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("Street", AttributeType::Text),
            ("HouseNumber", AttributeType::Integer),
            ("Precinct", AttributeType::Integer),
            ("District", AttributeType::Integer),
            ("Ward", AttributeType::Integer),
            ("Ethnicity", AttributeType::Text),
            ("MailCity", AttributeType::Text),
            ("MailState", AttributeType::Text),
            ("MailZip", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        950_000
    }

    fn paper_golden_dcs(&self) -> usize {
        12
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let statuses = ["Active", "Inactive"];
        let streets = ["Main St", "Oak Ave", "Pine Rd", "Maple Dr"];
        // Four voters per household: enough same-household pairs that every
        // person-driver combination is saturated at the default row count
        // (sparse combinations would otherwise read as accidental DCs).
        let households = (rows / 4).max(1);
        // Rows per household, rounded up, so household-local voter ids never
        // collide across households at any row count.
        let rounds = rows.div_ceil(households) as i64;
        for i in 0..rows {
            // Household driver: fixes the entire geographic block through
            // nested graded buckets (laminar chain 4 | 8 | 16 | 64), so
            // state, city, county, zip, street, house number, precinct,
            // district, ward, phone, and the mailing mirror all share the
            // household order.
            let h = i % households;
            let state_idx = bucket(h, households, pools::STATES.len());
            let city_sel = bucket(h, households, 16) % 2;
            let city_idx = state_idx * 2 + city_sel;
            let geo64 = bucket(h, households, 64);
            let zip_block = geo64 % 4;
            let zip =
                pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + zip_block as i64 * 30;
            let area_code = pools::state_area_code(state_idx);
            // Precinct / district / ward are city-scoped identifiers, all
            // graded against the same geography.
            let precinct = 3_000 + city_idx as i64 * 100 + zip_block as i64;
            // Person drivers: age bracket, first-name index, party index,
            // each with threshold (graded) derivations.
            let age = 18 + 3 * rng.gen_range(0..26i64);
            let first_idx = rng.gen_range(0..pools::FIRST_NAMES.len());
            let party_idx = rng.gen_range(0..pools::PARTIES.len());
            let round = (i / households) as i64;
            b.push_row(vec![
                // Voter ids are assigned household-by-household, so the id
                // order coincides with the household (and hence phone/zip)
                // order instead of adding an independent row-order dim.
                Value::Int(5_000_000 + h as i64 * rounds + round),
                Value::from(pools::FIRST_NAMES[first_idx]),
                // Middle initials share no values with the gender column,
                // so no cross predicates arise between the two.
                Value::from(if first_idx < 6 { "A" } else { "J" }),
                Value::from(pools::LAST_NAMES[bucket(h, households, 8)]),
                Value::Int(age),
                Value::Int(REFERENCE_YEAR - age),
                Value::from(if first_idx < 6 { "F" } else { "M" }),
                // Registration at 19: the registration year is a pure
                // translation of the birth year, and its step-3 lattice is
                // offset by one so the two columns share no values.
                Value::Int(REFERENCE_YEAR + 19 - age),
                Value::from(pools::PARTIES[party_idx]),
                Value::from(statuses[bucket(party_idx, 4, 2)]),
                Value::from(pools::COUNTIES[city_idx]),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::Int(area_code),
                Value::Int(area_code * 10_000_000 + h as i64),
                Value::from(streets[bucket(h, households, 4)]),
                // House number, ward, and district sit at *different*
                // levels of the geographic chain (8 / 32 / 16 buckets), so
                // none of them duplicates the zip/precinct pair pattern.
                Value::Int(700 + 7 * bucket(h, households, 8) as i64),
                Value::Int(precinct),
                Value::Int(1 + city_idx as i64),
                Value::Int(101 + bucket(h, households, 32) as i64),
                // The ethnicity split nests strictly inside the status
                // split (laminar over the party domain), so the two columns
                // have distinct — not interchangeable — pair patterns.
                Value::from(if party_idx < 1 { "NL" } else { "HL" }),
                // The mailing mirror is value-disjoint from the residential
                // columns (PO-box city names, lowercase state codes, +1 zip
                // offsets), so the shared-values rule generates no
                // residential-vs-mailing cross predicates while the mailing
                // hierarchy itself stays intact.
                Value::from(format!("{} PO", pools::CITIES[city_idx])),
                Value::from(pools::STATES[state_idx].to_lowercase()),
                Value::Int(pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + 777),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("voter rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            keys: vec![Key {
                attr: "VoterID",
                golden: true,
            }],
            hierarchies: vec![
                &["Zip", "City", "County", "State"],
                &["MailZip", "MailCity", "MailState"],
            ],
            fds: vec![
                // Golden set (Table 4: key + 10 FD-style rules + 1 order
                // rule).
                Fd {
                    lhs: &["Zip"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "City",
                    golden: true,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "County",
                    golden: true,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "County",
                    golden: true,
                },
                Fd {
                    lhs: &["County"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Age"],
                    rhs: "BirthYear",
                    golden: true,
                },
                Fd {
                    lhs: &["AreaCode"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Phone"],
                    rhs: "AreaCode",
                    golden: true,
                },
                Fd {
                    lhs: &["Precinct"],
                    rhs: "County",
                    golden: true,
                },
                Fd {
                    lhs: &["MailZip"],
                    rhs: "MailState",
                    golden: true,
                },
                // Structural (non-golden) household- and driver-level FDs.
                Fd {
                    lhs: &["Phone"],
                    rhs: "Zip",
                    golden: false,
                },
                Fd {
                    lhs: &["Age"],
                    rhs: "RegYear",
                    golden: false,
                },
                Fd {
                    lhs: &["FirstName"],
                    rhs: "Gender",
                    golden: false,
                },
                Fd {
                    lhs: &["FirstName"],
                    rhs: "MiddleName",
                    golden: false,
                },
                Fd {
                    lhs: &["Party"],
                    rhs: "Status",
                    golden: false,
                },
                Fd {
                    lhs: &["Precinct"],
                    rhs: "District",
                    golden: false,
                },
                Fd {
                    lhs: &["Precinct"],
                    rhs: "Ward",
                    golden: false,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "MailZip",
                    golden: false,
                },
            ],
            monotones: vec![Monotone {
                group: &[],
                driver: "Age",
                dependent: "BirthYear",
                decreasing: true,
                golden: true,
            }],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_twenty_five_attributes() {
        assert_eq!(VoterDataset.schema().arity(), 25);
    }

    #[test]
    fn all_twelve_golden_dcs_resolve() {
        let r = VoterDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(VoterDataset.correlation().golden_count(), 12);
        assert_eq!(VoterDataset.golden_dcs(&space).len(), 12);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        // Row counts off the 4-per-household grid included: voter ids must
        // stay unique (and the spec satisfied) at any cardinality.
        for rows in [320, 250, 9] {
            let r = VoterDataset.generate(rows, 5);
            VoterDataset.correlation().verify(&r).unwrap();
        }
    }

    #[test]
    fn registration_is_not_before_birth() {
        let r = VoterDataset.generate(200, 6);
        let schema = VoterDataset.schema();
        let by = schema.index_of("BirthYear").unwrap();
        let reg = schema.index_of("RegYear").unwrap();
        for row in 0..r.len() {
            assert!(r.value(row, reg).as_i64().unwrap() >= r.value(row, by).as_i64().unwrap());
        }
    }

    #[test]
    fn precinct_is_county_scoped() {
        let r = VoterDataset.generate(250, 8);
        let schema = VoterDataset.schema();
        let precinct = schema.index_of("Precinct").unwrap();
        let county = schema.index_of("County").unwrap();
        use std::collections::HashMap;
        let mut map: HashMap<i64, String> = HashMap::new();
        for row in 0..r.len() {
            let p = r.value(row, precinct).as_i64().unwrap();
            let c = r.value(row, county).to_string();
            if let Some(prev) = map.get(&p) {
                assert_eq!(prev, &c);
            } else {
                map.insert(p, c);
            }
        }
    }
}
