//! Synthetic analog of the **Flight** dataset (582 K tuples, 20 attributes,
//! 13 golden DCs). One row per flight leg; routes (airline + flight number)
//! determine origin and destination, airports determine city and state, and
//! the elapsed time is consistent with departure and arrival times.

use crate::generator::{pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Flight analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightDataset;

impl DatasetGenerator for FlightDataset {
    fn name(&self) -> &'static str {
        "Flight"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("FlightID", AttributeType::Integer),
            ("Airline", AttributeType::Text),
            ("FlightNo", AttributeType::Integer),
            ("TailNumber", AttributeType::Text),
            ("OriginAirport", AttributeType::Text),
            ("OriginCity", AttributeType::Text),
            ("OriginState", AttributeType::Text),
            ("DestAirport", AttributeType::Text),
            ("DestCity", AttributeType::Text),
            ("DestState", AttributeType::Text),
            ("Month", AttributeType::Integer),
            ("DayOfWeek", AttributeType::Integer),
            ("SchedDepTime", AttributeType::Integer),
            ("DepTime", AttributeType::Integer),
            ("SchedArrTime", AttributeType::Integer),
            ("ArrTime", AttributeType::Integer),
            ("SchedElapsed", AttributeType::Integer),
            ("ElapsedTime", AttributeType::Integer),
            ("Distance", AttributeType::Integer),
            ("Cancelled", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        582_000
    }

    fn paper_golden_dcs(&self) -> usize {
        13
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        // A pool of routes: (airline, flight number) determines the route.
        let num_routes = (rows / 10).max(1);
        let airports = pools::AIRPORTS;
        let routes: Vec<(usize, i64, usize, usize, i64)> = (0..num_routes)
            .map(|k| {
                let airline = rng.gen_range(0..pools::AIRLINES.len());
                let flight_no = 100 + k as i64;
                let origin = rng.gen_range(0..airports.len());
                let mut dest = rng.gen_range(0..airports.len());
                if dest == origin {
                    dest = (dest + 1) % airports.len();
                }
                let distance = 200 + 150 * ((origin as i64 - dest as i64).abs());
                (airline, flight_no, origin, dest, distance)
            })
            .collect();
        for i in 0..rows {
            let (airline, flight_no, origin, dest, distance) = routes[i % num_routes];
            // Airport index -> city/state via the shared pools (airport k sits
            // in city k of the CITIES pool, which belongs to state k/2).
            let (ocity, ostate) = (pools::CITIES[origin], pools::STATES[origin / 2]);
            let (dcity, dstate) = (pools::CITIES[dest], pools::STATES[dest / 2]);
            let sched_dep = rng.gen_range(300..1_200i64);
            let delay = rng.gen_range(0..45i64);
            let dep = sched_dep + delay;
            let sched_elapsed = 40 + distance / 8;
            let elapsed = sched_elapsed + rng.gen_range(-10..20i64).max(10 - sched_elapsed);
            let arr = dep + elapsed;
            let sched_arr = sched_dep + sched_elapsed;
            b.push_row(vec![
                Value::Int(i as i64),
                Value::from(pools::AIRLINES[airline]),
                Value::Int(flight_no),
                Value::from(format!("N{:05}", i % 500)),
                Value::from(airports[origin]),
                Value::from(ocity),
                Value::from(ostate),
                Value::from(airports[dest]),
                Value::from(dcity),
                Value::from(dstate),
                Value::Int(1 + (i as i64 % 12)),
                Value::Int(1 + (i as i64 % 7)),
                Value::Int(sched_dep),
                Value::Int(dep),
                Value::Int(sched_arr),
                Value::Int(arr),
                Value::Int(sched_elapsed),
                Value::Int(elapsed),
                Value::Int(distance),
                Value::Int(0),
            ])
            .expect("flight rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // The flight id is a key.
                &[("FlightID", "=", Other, "FlightID")],
                // Airports determine their city and state.
                &[
                    ("OriginAirport", "=", Other, "OriginAirport"),
                    ("OriginCity", "≠", Other, "OriginCity"),
                ],
                &[
                    ("OriginAirport", "=", Other, "OriginAirport"),
                    ("OriginState", "≠", Other, "OriginState"),
                ],
                &[
                    ("DestAirport", "=", Other, "DestAirport"),
                    ("DestCity", "≠", Other, "DestCity"),
                ],
                &[
                    ("DestAirport", "=", Other, "DestAirport"),
                    ("DestState", "≠", Other, "DestState"),
                ],
                // Cities belong to a single state.
                &[
                    ("OriginCity", "=", Other, "OriginCity"),
                    ("OriginState", "≠", Other, "OriginState"),
                ],
                &[
                    ("DestCity", "=", Other, "DestCity"),
                    ("DestState", "≠", Other, "DestState"),
                ],
                // (Airline, FlightNo) determines the route.
                &[
                    ("Airline", "=", Other, "Airline"),
                    ("FlightNo", "=", Other, "FlightNo"),
                    ("OriginAirport", "≠", Other, "OriginAirport"),
                ],
                &[
                    ("Airline", "=", Other, "Airline"),
                    ("FlightNo", "=", Other, "FlightNo"),
                    ("DestAirport", "≠", Other, "DestAirport"),
                ],
                &[
                    ("Airline", "=", Other, "Airline"),
                    ("FlightNo", "=", Other, "FlightNo"),
                    ("Distance", "≠", Other, "Distance"),
                ],
                // Elapsed-time consistency (Table 5 of the paper): departing
                // later and arriving earlier cannot take longer.
                &[
                    ("OriginState", "=", Other, "OriginState"),
                    ("DestState", "=", Other, "DestState"),
                    ("DepTime", "≥", Other, "DepTime"),
                    ("ArrTime", "≤", Other, "ArrTime"),
                    ("ElapsedTime", ">", Other, "ElapsedTime"),
                ],
                // The same consistency holds for the scheduled times.
                &[
                    ("OriginState", "=", Other, "OriginState"),
                    ("DestState", "=", Other, "DestState"),
                    ("SchedDepTime", "≥", Other, "SchedDepTime"),
                    ("SchedArrTime", "≤", Other, "SchedArrTime"),
                    ("SchedElapsed", ">", Other, "SchedElapsed"),
                ],
                // (Airline, FlightNo) determines the scheduled elapsed time.
                &[
                    ("Airline", "=", Other, "Airline"),
                    ("FlightNo", "=", Other, "FlightNo"),
                    ("SchedElapsed", "≠", Other, "SchedElapsed"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_twenty_attributes() {
        assert_eq!(FlightDataset.schema().arity(), 20);
    }

    #[test]
    fn all_thirteen_golden_dcs_resolve() {
        let r = FlightDataset.generate(150, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(FlightDataset.golden_dcs(&space).len(), 13);
    }

    #[test]
    fn elapsed_time_is_arrival_minus_departure() {
        let r = FlightDataset.generate(200, 9);
        let schema = FlightDataset.schema();
        let dep = schema.index_of("DepTime").unwrap();
        let arr = schema.index_of("ArrTime").unwrap();
        let elapsed = schema.index_of("ElapsedTime").unwrap();
        for row in 0..r.len() {
            let d = r.value(row, dep).as_i64().unwrap();
            let a = r.value(row, arr).as_i64().unwrap();
            let e = r.value(row, elapsed).as_i64().unwrap();
            assert_eq!(a - d, e);
            assert!(e > 0);
        }
    }

    #[test]
    fn route_is_determined_by_airline_and_flight_number() {
        let r = FlightDataset.generate(200, 4);
        let schema = FlightDataset.schema();
        let airline = schema.index_of("Airline").unwrap();
        let no = schema.index_of("FlightNo").unwrap();
        let origin = schema.index_of("OriginAirport").unwrap();
        use std::collections::HashMap;
        let mut by_route: HashMap<(String, i64), String> = HashMap::new();
        for row in 0..r.len() {
            let key = (
                r.value(row, airline).to_string(),
                r.value(row, no).as_i64().unwrap(),
            );
            let o = r.value(row, origin).to_string();
            if let Some(prev) = by_route.get(&key) {
                assert_eq!(prev, &o);
            } else {
                by_route.insert(key, o);
            }
        }
    }
}
