//! Synthetic analog of the **Flight** dataset (582 K tuples, 20 attributes,
//! 13 golden DCs). One row per flight leg; routes (airline + flight number)
//! determine origin and destination, airports determine city and state, and
//! the elapsed time is consistent with departure and arrival times.
//!
//! Correlation model: the route (airline, flight number) is the master
//! driver — endpoints, distance, scheduled times, and tail number are all
//! deterministic functions of it. The actual times derive from the schedule
//! plus two small drivers (departure delay, air-time adjustment), with
//! `ArrTime = DepTime + ElapsedTime` holding exactly so the paper's
//! elapsed-time consistency rules hold by construction.

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Key};
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::TupleRole;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Flight analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlightDataset;

impl DatasetGenerator for FlightDataset {
    fn name(&self) -> &'static str {
        "Flight"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("FlightID", AttributeType::Integer),
            ("Airline", AttributeType::Text),
            ("FlightNo", AttributeType::Integer),
            ("TailNumber", AttributeType::Text),
            ("OriginAirport", AttributeType::Text),
            ("OriginCity", AttributeType::Text),
            ("OriginState", AttributeType::Text),
            ("DestAirport", AttributeType::Text),
            ("DestCity", AttributeType::Text),
            ("DestState", AttributeType::Text),
            ("Month", AttributeType::Integer),
            ("DayOfWeek", AttributeType::Integer),
            ("SchedDepTime", AttributeType::Integer),
            ("DepTime", AttributeType::Integer),
            ("SchedArrTime", AttributeType::Integer),
            ("ArrTime", AttributeType::Integer),
            ("SchedElapsed", AttributeType::Integer),
            ("ElapsedTime", AttributeType::Integer),
            ("Distance", AttributeType::Integer),
            ("Cancelled", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        582_000
    }

    fn paper_golden_dcs(&self) -> usize {
        13
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        // Route driver: (airline, flight number) determines the endpoints,
        // the distance, the schedule, and the tail number.
        let num_routes = (rows / 10).max(1);
        let airports = pools::AIRPORTS;
        for i in 0..rows {
            // Route driver: everything route-level is a graded bucket of the
            // route id (laminar chain 6 | 12 | 24), with the destination
            // paired to the origin so endpoint equality patterns coincide.
            let r = i % num_routes;
            let airline = bucket(r, num_routes, pools::AIRLINES.len());
            // Flight numbers sit above every time/distance value so the
            // shared-values rule never compares them with the time columns.
            let flight_no = 2_000 + r as i64;
            // Hub-and-spoke endpoints: origins come from the first six
            // airports, destinations from the last six, so the origin and
            // destination columns share no values and the shared-values rule
            // generates no cross predicates between the endpoint blocks.
            let origin = bucket(r, num_routes, airports.len() / 2);
            let dest = airports.len() / 2 + origin;
            // One route *scale* (aligned with the airline grading) drives
            // distance and every scheduled time **linearly**, so all time
            // comparisons are thresholds on the scale difference. The
            // actual-vs-scheduled offsets are chosen so that every pair of
            // time/distance columns has disjoint value sets — the paper's
            // golden rules only need same-column time predicates, and the
            // disjointness keeps the predicate space free of incidental
            // cross-column time comparisons.
            let scale = bucket(r, num_routes, 6) as i64;
            let distance = 200 + 150 * scale;
            let sched_dep = 300 + 120 * scale;
            let sched_elapsed = 40 + 30 * scale;
            // Airport index -> city/state via the shared pools (airport k sits
            // in city k of the CITIES pool, which belongs to state k/2).
            let (ocity, ostate) = (pools::CITIES[origin], pools::STATES[origin / 2]);
            let (dcity, dstate) = (pools::CITIES[dest], pools::STATES[dest / 2]);
            let sched_arr = sched_dep + sched_elapsed;
            // Leg driver: a punctuality level fixing both the departure
            // delay and the air-time adjustment.
            let leg = rng.gen_range(0..3usize);
            let delay = [5, 15, 35][leg];
            let adjustment = [3, 3, 8][leg];
            let dep = sched_dep + delay;
            let elapsed = sched_elapsed + adjustment;
            let arr = dep + elapsed;
            let round = (i / num_routes) as i64;
            b.push_row(vec![
                // Id range kept above every other numeric column at any
                // generated scale.
                Value::Int(1_000_000 + i as i64),
                Value::from(pools::AIRLINES[airline]),
                Value::Int(flight_no),
                Value::from(format!("N{:05}", 100 + r)),
                Value::from(airports[origin]),
                Value::from(ocity),
                Value::from(ostate),
                Value::from(airports[dest]),
                Value::from(dcity),
                Value::from(dstate),
                Value::Int(1 + round.min(11)),
                Value::Int(1 + bucket(round.min(11) as usize, 12, 7) as i64),
                Value::Int(sched_dep),
                Value::Int(dep),
                Value::Int(sched_arr),
                Value::Int(arr),
                Value::Int(sched_elapsed),
                Value::Int(elapsed),
                Value::Int(distance),
                Value::Int(0),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("flight rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        use TupleRole::Other;
        CorrelationSpec {
            keys: vec![Key {
                attr: "FlightID",
                golden: true,
            }],
            hierarchies: vec![
                &["OriginAirport", "OriginCity", "OriginState"],
                &["DestAirport", "DestCity", "DestState"],
            ],
            fds: vec![
                // Golden set (Table 4: key + 9 FD-style rules + 2 order
                // rules + 1 route rule, listed under `extras`).
                Fd {
                    lhs: &["OriginAirport"],
                    rhs: "OriginCity",
                    golden: true,
                },
                Fd {
                    lhs: &["OriginAirport"],
                    rhs: "OriginState",
                    golden: true,
                },
                Fd {
                    lhs: &["DestAirport"],
                    rhs: "DestCity",
                    golden: true,
                },
                Fd {
                    lhs: &["DestAirport"],
                    rhs: "DestState",
                    golden: true,
                },
                Fd {
                    lhs: &["OriginCity"],
                    rhs: "OriginState",
                    golden: true,
                },
                Fd {
                    lhs: &["DestCity"],
                    rhs: "DestState",
                    golden: true,
                },
                Fd {
                    lhs: &["Airline", "FlightNo"],
                    rhs: "OriginAirport",
                    golden: true,
                },
                Fd {
                    lhs: &["Airline", "FlightNo"],
                    rhs: "DestAirport",
                    golden: true,
                },
                Fd {
                    lhs: &["Airline", "FlightNo"],
                    rhs: "Distance",
                    golden: true,
                },
                Fd {
                    lhs: &["Airline", "FlightNo"],
                    rhs: "SchedElapsed",
                    golden: true,
                },
                // Structural (non-golden) route-level FDs.
                Fd {
                    lhs: &["FlightNo"],
                    rhs: "Airline",
                    golden: false,
                },
                Fd {
                    lhs: &["FlightNo"],
                    rhs: "TailNumber",
                    golden: false,
                },
                Fd {
                    lhs: &["FlightNo"],
                    rhs: "SchedDepTime",
                    golden: false,
                },
                Fd {
                    lhs: &["FlightNo"],
                    rhs: "SchedArrTime",
                    golden: false,
                },
                Fd {
                    lhs: &["DepTime", "ElapsedTime"],
                    rhs: "ArrTime",
                    golden: false,
                },
            ],
            // Elapsed-time consistency (Table 5 of the paper): departing
            // later and arriving earlier cannot take longer; the same holds
            // for the scheduled times. These hold exactly because
            // `ArrTime = DepTime + ElapsedTime` by construction.
            extras: vec![
                &[
                    ("OriginState", "=", Other, "OriginState"),
                    ("DestState", "=", Other, "DestState"),
                    ("DepTime", "≥", Other, "DepTime"),
                    ("ArrTime", "≤", Other, "ArrTime"),
                    ("ElapsedTime", ">", Other, "ElapsedTime"),
                ],
                &[
                    ("OriginState", "=", Other, "OriginState"),
                    ("DestState", "=", Other, "DestState"),
                    ("SchedDepTime", "≥", Other, "SchedDepTime"),
                    ("SchedArrTime", "≤", Other, "SchedArrTime"),
                    ("SchedElapsed", ">", Other, "SchedElapsed"),
                ],
            ],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_twenty_attributes() {
        assert_eq!(FlightDataset.schema().arity(), 20);
    }

    #[test]
    fn all_thirteen_golden_dcs_resolve() {
        let r = FlightDataset.generate(150, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(FlightDataset.correlation().golden_count(), 13);
        assert_eq!(FlightDataset.golden_dcs(&space).len(), 13);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = FlightDataset.generate(300, 9);
        FlightDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn elapsed_time_is_arrival_minus_departure() {
        let r = FlightDataset.generate(200, 9);
        let schema = FlightDataset.schema();
        let dep = schema.index_of("DepTime").unwrap();
        let arr = schema.index_of("ArrTime").unwrap();
        let elapsed = schema.index_of("ElapsedTime").unwrap();
        for row in 0..r.len() {
            let d = r.value(row, dep).as_i64().unwrap();
            let a = r.value(row, arr).as_i64().unwrap();
            let e = r.value(row, elapsed).as_i64().unwrap();
            assert_eq!(a - d, e);
            assert!(e > 0);
        }
    }

    #[test]
    fn route_is_determined_by_airline_and_flight_number() {
        let r = FlightDataset.generate(200, 4);
        let schema = FlightDataset.schema();
        let airline = schema.index_of("Airline").unwrap();
        let no = schema.index_of("FlightNo").unwrap();
        let origin = schema.index_of("OriginAirport").unwrap();
        use std::collections::HashMap;
        let mut by_route: HashMap<(String, i64), String> = HashMap::new();
        for row in 0..r.len() {
            let key = (
                r.value(row, airline).to_string(),
                r.value(row, no).as_i64().unwrap(),
            );
            let o = r.value(row, origin).to_string();
            if let Some(prev) = by_route.get(&key) {
                assert_eq!(prev, &o);
            } else {
                by_route.insert(key, o);
            }
        }
    }
}
