//! Synthetic analog of the **SP Stock** dataset (123 K tuples, 7 attributes,
//! 6 golden DCs). Daily OHLCV bars per ticker; the golden rules are the
//! classic price-sanity constraints (`High ≥ Low`, `Open ≤ High`, ...).

use crate::generator::{pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the SP Stock analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct StockDataset;

impl DatasetGenerator for StockDataset {
    fn name(&self) -> &'static str {
        "Stock"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("Ticker", AttributeType::Text),
            ("Date", AttributeType::Integer),
            ("Open", AttributeType::Integer),
            ("High", AttributeType::Integer),
            ("Low", AttributeType::Integer),
            ("Close", AttributeType::Integer),
            ("Volume", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        123_000
    }

    fn paper_golden_dcs(&self) -> usize {
        6
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        // One bar per (date, ticker), round-robin over tickers so (Ticker, Date)
        // is a key by construction.
        let tickers = pools::TICKERS;
        let mut last_close: Vec<i64> = (0..tickers.len()).map(|_| rng.gen_range(50..150)).collect();
        for i in 0..rows {
            let t = i % tickers.len();
            let date = (i / tickers.len()) as i64;
            let open = last_close[t];
            let close = (open + rng.gen_range(-10..=10)).clamp(10, 400);
            let high = open.max(close) + rng.gen_range(0..5);
            let low = (open.min(close) - rng.gen_range(0..5)).max(1);
            let volume = rng.gen_range(1_000..100_000);
            last_close[t] = close;
            b.push_row(vec![
                Value::from(tickers[t]),
                Value::Int(date),
                Value::Int(open),
                Value::Int(high),
                Value::Int(low),
                Value::Int(close),
                Value::Int(volume),
            ])
            .expect("stock rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::{Other, Same};
        resolve_dcs(
            space,
            &[
                // Price sanity within a single bar. Single-tuple predicates are
                // generated once per unordered attribute pair (lower schema
                // index on the left), so the constraints are phrased in that
                // canonical direction.
                &[("High", "<", Same, "Low")],
                &[("Open", ">", Same, "High")],
                &[("High", "<", Same, "Close")],
                &[("Open", "<", Same, "Low")],
                &[("Low", ">", Same, "Close")],
                // (Ticker, Date) determines the closing price.
                &[
                    ("Ticker", "=", Other, "Ticker"),
                    ("Date", "=", Other, "Date"),
                    ("Close", "≠", Other, "Close"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn price_sanity_holds_on_clean_data() {
        let r = StockDataset.generate(300, 11);
        let schema = StockDataset.schema();
        let (open, high, low, close) = (
            schema.index_of("Open").unwrap(),
            schema.index_of("High").unwrap(),
            schema.index_of("Low").unwrap(),
            schema.index_of("Close").unwrap(),
        );
        for row in 0..r.len() {
            let o = r.value(row, open).as_i64().unwrap();
            let h = r.value(row, high).as_i64().unwrap();
            let l = r.value(row, low).as_i64().unwrap();
            let c = r.value(row, close).as_i64().unwrap();
            assert!(l <= o && o <= h);
            assert!(l <= c && c <= h);
            assert!(l >= 1);
        }
    }

    #[test]
    fn ticker_date_is_a_key() {
        let r = StockDataset.generate(250, 5);
        let schema = StockDataset.schema();
        let (ticker, date) = (
            schema.index_of("Ticker").unwrap(),
            schema.index_of("Date").unwrap(),
        );
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for row in 0..r.len() {
            let key = (
                r.value(row, ticker).to_string(),
                r.value(row, date).to_string(),
            );
            assert!(seen.insert(key), "duplicate (ticker, date) at row {row}");
        }
    }

    #[test]
    fn all_six_golden_dcs_resolve_including_single_tuple_predicates() {
        let r = StockDataset.generate(200, 1);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        let golden = StockDataset.golden_dcs(&space);
        assert_eq!(golden.len(), 6);
        // At least one golden DC uses a single-tuple predicate (t.High < t.Low).
        assert!(golden.iter().any(|dc| dc.len() == 1));
    }
}
