//! Synthetic analog of the **SP Stock** dataset (123 K tuples, 7 attributes,
//! 6 golden DCs). Daily OHLCV bars per ticker; the golden rules are the
//! classic price-sanity constraints (`High ≥ Low`, `Open ≤ High`, ...).
//!
//! Correlation model: each ticker trades in its own disjoint price band
//! (`base(ticker)`, bands 20 apart), and daily prices are the band base plus
//! small driver moves (|move| ≤ 3). Cross-ticker price order therefore always
//! equals the ticker order, and within a ticker every OHLC relation is a
//! function of the two move drivers — no column carries an independent random
//! order. Volume is a function of (ticker, volume tier).

use crate::generator::{pools, CorrelationSpec, DatasetGenerator, Fd, Forbidden};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the SP Stock analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct StockDataset;

impl DatasetGenerator for StockDataset {
    fn name(&self) -> &'static str {
        "Stock"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("Ticker", AttributeType::Text),
            ("Date", AttributeType::Integer),
            ("Open", AttributeType::Integer),
            ("High", AttributeType::Integer),
            ("Low", AttributeType::Integer),
            ("Close", AttributeType::Integer),
            ("Volume", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        123_000
    }

    fn paper_golden_dcs(&self) -> usize {
        6
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        // One bar per (date, ticker), round-robin over tickers so (Ticker,
        // Date) is a key by construction. Each ticker owns the disjoint band
        // [base - 5, base + 5] around base = 50 + 20 * ticker.
        let tickers = pools::TICKERS;
        // Day-shape templates, *co-monotone* in the shape index: every OHLC
        // column (and the volume) strictly increases with the shape, so all
        // within-ticker order patterns collapse to the single shape
        // relation, and the per-row single-tuple signature is one of three.
        // The value sets still overlap pairwise by ≥ 1/3 so the shared-values
        // rule generates the single-tuple predicates the golden rules need.
        for i in 0..rows {
            let t = i % tickers.len();
            // Date-code style values, far from every price/volume range so
            // the shared-values rule never compares dates with prices.
            let date = 20_180_000 + (i / tickers.len()) as i64;
            let base = 50 + 20 * t as i64;
            // Driver: the day level. The whole bar translates with it at
            // *constant gaps* (High = Open + 2, Low = Open − 1,
            // Close = Open + 1), so every within-ticker comparison — same
            // column or cross column — is a threshold predicate on the level
            // difference, a one-dimensional (nested) family that keeps the
            // minimal-ADC set small. The gaps still give pairwise value
            // overlaps ≥ 40 % so the single-tuple predicates the golden
            // price-sanity rules need are all generated.
            let level = rng.gen_range(-2..=2i64);
            let open = base + level;
            let high = open + 2;
            let low = open - 1;
            let close = open + 1;
            let volume = 10_000 + 1_000 * t as i64 + 100 * (level + 2);
            b.push_row(vec![
                Value::from(tickers[t]),
                Value::Int(date),
                Value::Int(open),
                Value::Int(high),
                Value::Int(low),
                Value::Int(close),
                Value::Int(volume),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("stock rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            fds: vec![
                // (Ticker, Date) determines the closing price (golden; it is
                // also a key of the relation, so the FD holds trivially).
                Fd {
                    lhs: &["Ticker", "Date"],
                    rhs: "Close",
                    golden: true,
                },
                // Structural: every bar column is determined by the full key.
                Fd {
                    lhs: &["Ticker", "Date"],
                    rhs: "Open",
                    golden: false,
                },
                Fd {
                    lhs: &["Ticker", "Date"],
                    rhs: "High",
                    golden: false,
                },
                Fd {
                    lhs: &["Ticker", "Date"],
                    rhs: "Low",
                    golden: false,
                },
                Fd {
                    lhs: &["Ticker", "Date"],
                    rhs: "Volume",
                    golden: false,
                },
            ],
            // Price sanity within a single bar. Single-tuple predicates are
            // generated once per unordered attribute pair (lower schema index
            // on the left), so the rules are phrased in that canonical
            // direction.
            forbidden: vec![
                Forbidden {
                    left: "High",
                    op: "<",
                    right: "Low",
                    golden: true,
                },
                Forbidden {
                    left: "Open",
                    op: ">",
                    right: "High",
                    golden: true,
                },
                Forbidden {
                    left: "High",
                    op: "<",
                    right: "Close",
                    golden: true,
                },
                Forbidden {
                    left: "Open",
                    op: "<",
                    right: "Low",
                    golden: true,
                },
                Forbidden {
                    left: "Low",
                    op: ">",
                    right: "Close",
                    golden: true,
                },
            ],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn price_sanity_holds_on_clean_data() {
        let r = StockDataset.generate(300, 11);
        let schema = StockDataset.schema();
        let (open, high, low, close) = (
            schema.index_of("Open").unwrap(),
            schema.index_of("High").unwrap(),
            schema.index_of("Low").unwrap(),
            schema.index_of("Close").unwrap(),
        );
        for row in 0..r.len() {
            let o = r.value(row, open).as_i64().unwrap();
            let h = r.value(row, high).as_i64().unwrap();
            let l = r.value(row, low).as_i64().unwrap();
            let c = r.value(row, close).as_i64().unwrap();
            assert!(l <= o && o <= h);
            assert!(l <= c && c <= h);
            assert!(l >= 1);
        }
    }

    #[test]
    fn ticker_date_is_a_key() {
        let r = StockDataset.generate(250, 5);
        let schema = StockDataset.schema();
        let (ticker, date) = (
            schema.index_of("Ticker").unwrap(),
            schema.index_of("Date").unwrap(),
        );
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for row in 0..r.len() {
            let key = (
                r.value(row, ticker).to_string(),
                r.value(row, date).to_string(),
            );
            assert!(seen.insert(key), "duplicate (ticker, date) at row {row}");
        }
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = StockDataset.generate(300, 7);
        StockDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn all_six_golden_dcs_resolve_including_single_tuple_predicates() {
        let r = StockDataset.generate(200, 1);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        let golden = StockDataset.golden_dcs(&space);
        assert_eq!(StockDataset.correlation().golden_count(), 6);
        assert_eq!(golden.len(), 6);
        // At least one golden DC uses a single-tuple predicate (t.High < t.Low).
        assert!(golden.iter().any(|dc| dc.len() == 1));
    }
}
