//! Synthetic analog of the **Adult** (census income) dataset (32 K tuples,
//! 15 attributes, 3 golden DCs). The golden rules relate age to birth year
//! and tie the textual education level to its numeric encoding.
//!
//! Correlation model: three small drivers — an age bracket, an education
//! index, and an occupation index — determine every other column. The birth
//! year and the census weight are deterministic functions of the age (their
//! cross-row orders coincide with the age order), capital gain/loss and
//! hours derive from education/occupation, and all remaining categoricals
//! are functions of the occupation and education indexes.

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Monotone};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Adult analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdultDataset;

/// Reference year used to derive `BirthYear` from `Age`.
const REFERENCE_YEAR: i64 = 2020;

impl DatasetGenerator for AdultDataset {
    fn name(&self) -> &'static str {
        "Adult"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("Age", AttributeType::Integer),
            ("BirthYear", AttributeType::Integer),
            ("Workclass", AttributeType::Text),
            ("Fnlwgt", AttributeType::Integer),
            ("Education", AttributeType::Text),
            ("EducationNum", AttributeType::Integer),
            ("MaritalStatus", AttributeType::Text),
            ("Occupation", AttributeType::Text),
            ("Relationship", AttributeType::Text),
            ("Race", AttributeType::Text),
            ("Sex", AttributeType::Text),
            ("CapitalGain", AttributeType::Integer),
            ("CapitalLoss", AttributeType::Integer),
            ("HoursPerWeek", AttributeType::Integer),
            ("NativeCountry", AttributeType::Text),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        32_000
    }

    fn paper_golden_dcs(&self) -> usize {
        3
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let workclasses = [
            "Private",
            "Self-emp",
            "Federal-gov",
            "State-gov",
            "Local-gov",
        ];
        let marital = ["Never-married", "Married", "Divorced", "Widowed"];
        let relationship = ["Husband", "Wife", "Own-child", "Unmarried", "Not-in-family"];
        let races = ["White", "Black", "Asian-Pac-Islander", "Other"];
        let countries = [
            "United-States",
            "Mexico",
            "Philippines",
            "Germany",
            "Canada",
        ];
        for _ in 0..rows {
            // Drivers: age bracket, education index, occupation index. All
            // derived columns are graded (threshold/bucket) functions of a
            // single driver so their equality and order patterns stay
            // aligned with the driver's.
            let age = 18 + 3 * rng.gen_range(0..25i64);
            let edu_idx = rng.gen_range(0..pools::EDUCATION.len());
            let occ_idx = rng.gen_range(0..pools::OCCUPATIONS.len());
            let occ = pools::OCCUPATIONS.len();
            b.push_row(vec![
                Value::Int(age),
                Value::Int(REFERENCE_YEAR - age),
                Value::from(workclasses[bucket(occ_idx, occ, workclasses.len())]),
                // Census weight: monotone in age (tie-broken by education),
                // so its cross-row order coincides with the age order.
                Value::Int(500_000 + 1_000 * age + 40 * edu_idx as i64),
                Value::from(pools::EDUCATION[edu_idx]),
                Value::Int(pools::EDUCATION_YEARS[edu_idx]),
                Value::from(marital[bucket(occ_idx, occ, marital.len())]),
                Value::from(pools::OCCUPATIONS[occ_idx]),
                Value::from(relationship[bucket(occ_idx, occ, relationship.len())]),
                Value::from(races[bucket(occ_idx, occ, races.len())]),
                Value::from(if occ_idx < 4 { "Male" } else { "Female" }),
                Value::Int(if edu_idx >= 5 {
                    5_000 * (edu_idx as i64 - 4)
                } else {
                    0
                }),
                // The 250 floor keeps the loss value set disjoint from the
                // gain's {0, ...}, so no cross-column predicates appear.
                Value::Int(if occ_idx >= 6 {
                    700 + 100 * occ_idx as i64
                } else {
                    250
                }),
                Value::Int(20 + 5 * occ_idx as i64),
                Value::from(countries[bucket(occ_idx, occ, countries.len())]),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("adult rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            fds: vec![
                // Golden set (Table 4: 2 FD-style rules + 1 order rule).
                Fd {
                    lhs: &["Age"],
                    rhs: "BirthYear",
                    golden: true,
                },
                Fd {
                    lhs: &["Education"],
                    rhs: "EducationNum",
                    golden: true,
                },
                // Structural (non-golden) driver-derived dependencies.
                Fd {
                    lhs: &["Age", "Education"],
                    rhs: "Fnlwgt",
                    golden: false,
                },
                Fd {
                    lhs: &["Education"],
                    rhs: "CapitalGain",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "Workclass",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "MaritalStatus",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "Relationship",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "Sex",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "CapitalLoss",
                    golden: false,
                },
                Fd {
                    lhs: &["Occupation"],
                    rhs: "HoursPerWeek",
                    golden: false,
                },
            ],
            monotones: vec![Monotone {
                group: &[],
                driver: "Age",
                dependent: "BirthYear",
                decreasing: true,
                golden: true,
            }],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_fifteen_attributes() {
        assert_eq!(AdultDataset.schema().arity(), 15);
    }

    #[test]
    fn all_three_golden_dcs_resolve() {
        let r = AdultDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(AdultDataset.correlation().golden_count(), 3);
        assert_eq!(AdultDataset.golden_dcs(&space).len(), 3);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = AdultDataset.generate(300, 8);
        AdultDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn birth_year_is_consistent_with_age() {
        let r = AdultDataset.generate(150, 5);
        let schema = AdultDataset.schema();
        let age = schema.index_of("Age").unwrap();
        let by = schema.index_of("BirthYear").unwrap();
        for row in 0..r.len() {
            assert_eq!(
                r.value(row, age).as_i64().unwrap() + r.value(row, by).as_i64().unwrap(),
                REFERENCE_YEAR
            );
        }
    }

    #[test]
    fn education_determines_education_num() {
        let r = AdultDataset.generate(150, 6);
        let schema = AdultDataset.schema();
        let edu = schema.index_of("Education").unwrap();
        let num = schema.index_of("EducationNum").unwrap();
        use std::collections::HashMap;
        let mut map: HashMap<String, i64> = HashMap::new();
        for row in 0..r.len() {
            let e = r.value(row, edu).to_string();
            let n = r.value(row, num).as_i64().unwrap();
            if let Some(prev) = map.get(&e) {
                assert_eq!(*prev, n);
            } else {
                map.insert(e, n);
            }
        }
    }
}
