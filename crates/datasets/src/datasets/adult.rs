//! Synthetic analog of the **Adult** (census income) dataset (32 K tuples,
//! 15 attributes, 3 golden DCs). The golden rules relate age to birth year
//! and tie the textual education level to its numeric encoding.

use crate::generator::{pick, pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Adult analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdultDataset;

/// Reference year used to derive `BirthYear` from `Age`.
const REFERENCE_YEAR: i64 = 2020;

impl DatasetGenerator for AdultDataset {
    fn name(&self) -> &'static str {
        "Adult"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("Age", AttributeType::Integer),
            ("BirthYear", AttributeType::Integer),
            ("Workclass", AttributeType::Text),
            ("Fnlwgt", AttributeType::Integer),
            ("Education", AttributeType::Text),
            ("EducationNum", AttributeType::Integer),
            ("MaritalStatus", AttributeType::Text),
            ("Occupation", AttributeType::Text),
            ("Relationship", AttributeType::Text),
            ("Race", AttributeType::Text),
            ("Sex", AttributeType::Text),
            ("CapitalGain", AttributeType::Integer),
            ("CapitalLoss", AttributeType::Integer),
            ("HoursPerWeek", AttributeType::Integer),
            ("NativeCountry", AttributeType::Text),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        32_000
    }

    fn paper_golden_dcs(&self) -> usize {
        3
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let workclasses = [
            "Private",
            "Self-emp",
            "Federal-gov",
            "State-gov",
            "Local-gov",
        ];
        let marital = ["Never-married", "Married", "Divorced", "Widowed"];
        let relationship = ["Husband", "Wife", "Own-child", "Unmarried", "Not-in-family"];
        let races = ["White", "Black", "Asian-Pac-Islander", "Other"];
        let countries = [
            "United-States",
            "Mexico",
            "Philippines",
            "Germany",
            "Canada",
        ];
        for _ in 0..rows {
            let age = rng.gen_range(17..=90i64);
            let edu_idx = rng.gen_range(0..pools::EDUCATION.len());
            b.push_row(vec![
                Value::Int(age),
                Value::Int(REFERENCE_YEAR - age),
                Value::from(*pick(&mut rng, &workclasses)),
                Value::Int(rng.gen_range(10_000..500_000)),
                Value::from(pools::EDUCATION[edu_idx]),
                Value::Int(pools::EDUCATION_YEARS[edu_idx]),
                Value::from(*pick(&mut rng, &marital)),
                Value::from(*pick(&mut rng, &pools::OCCUPATIONS)),
                Value::from(*pick(&mut rng, &relationship)),
                Value::from(*pick(&mut rng, &races)),
                Value::from(if rng.gen_bool(0.5) { "Male" } else { "Female" }),
                Value::Int(if rng.gen_bool(0.1) {
                    rng.gen_range(1..50_000)
                } else {
                    0
                }),
                Value::Int(if rng.gen_bool(0.05) {
                    rng.gen_range(1..3_000)
                } else {
                    0
                }),
                Value::Int(rng.gen_range(10..80)),
                Value::from(*pick(&mut rng, &countries)),
            ])
            .expect("adult rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // A younger person cannot have an earlier birth year.
                &[
                    ("Age", "<", Other, "Age"),
                    ("BirthYear", "<", Other, "BirthYear"),
                ],
                // Equal ages imply equal birth years (single reference year).
                &[
                    ("Age", "=", Other, "Age"),
                    ("BirthYear", "≠", Other, "BirthYear"),
                ],
                // The textual education level determines the numeric encoding.
                &[
                    ("Education", "=", Other, "Education"),
                    ("EducationNum", "≠", Other, "EducationNum"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_fifteen_attributes() {
        assert_eq!(AdultDataset.schema().arity(), 15);
    }

    #[test]
    fn all_three_golden_dcs_resolve() {
        let r = AdultDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(AdultDataset.golden_dcs(&space).len(), 3);
    }

    #[test]
    fn birth_year_is_consistent_with_age() {
        let r = AdultDataset.generate(150, 5);
        let schema = AdultDataset.schema();
        let age = schema.index_of("Age").unwrap();
        let by = schema.index_of("BirthYear").unwrap();
        for row in 0..r.len() {
            assert_eq!(
                r.value(row, age).as_i64().unwrap() + r.value(row, by).as_i64().unwrap(),
                REFERENCE_YEAR
            );
        }
    }

    #[test]
    fn education_determines_education_num() {
        let r = AdultDataset.generate(150, 6);
        let schema = AdultDataset.schema();
        let edu = schema.index_of("Education").unwrap();
        let num = schema.index_of("EducationNum").unwrap();
        use std::collections::HashMap;
        let mut map: HashMap<String, i64> = HashMap::new();
        for row in 0..r.len() {
            let e = r.value(row, edu).to_string();
            let n = r.value(row, num).as_i64().unwrap();
            if let Some(prev) = map.get(&e) {
                assert_eq!(*prev, n);
            } else {
                map.insert(e, n);
            }
        }
    }
}
