//! Synthetic analog of the **Tax** dataset (1 M tuples, 15 attributes,
//! 9 golden DCs in the paper). Person-level tax records.
//!
//! Correlation model: rows belong to *households* (≈ rows/3). A household
//! determines the geographic block — state, city, zip, area code, phone,
//! last name — with zip and area code both increasing in the state index so
//! their cross-row orders coincide, and the phone embedding the household id.
//! Person-level attributes derive from two small drivers: a first-name index
//! (which fixes gender, marital status, and has-child, and through them the
//! exemptions) and a salary bracket (which, with the state's flat tax rate,
//! fixes the tax). No cell carries an independent random order, which keeps
//! the unprojected predicate space tractable (see `generator.rs`).

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Monotone};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Tax analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaxDataset;

impl DatasetGenerator for TaxDataset {
    fn name(&self) -> &'static str {
        "Tax"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("FirstName", AttributeType::Text),
            ("LastName", AttributeType::Text),
            ("Gender", AttributeType::Text),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("MaritalStatus", AttributeType::Text),
            ("HasChild", AttributeType::Text),
            ("Salary", AttributeType::Integer),
            ("TaxRate", AttributeType::Integer),
            ("Tax", AttributeType::Integer),
            ("SingleExemption", AttributeType::Integer),
            ("ChildExemption", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        1_000_000
    }

    fn paper_golden_dcs(&self) -> usize {
        9
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let households = (rows / 3).max(1);
        for i in 0..rows {
            // Household driver: fixes the geographic block through *nested
            // graded buckets* of the household id, so state, city, zip
            // block, last name, and phone all share the household order.
            let h = i % households;
            let state_idx = bucket(h, households, pools::STATES.len());
            let city_sel = bucket(h, households, 16) % 2;
            let zip_block = bucket(h, households, 48) % 3;
            let city = pools::CITIES[state_idx * 2 + city_sel];
            let area_code = pools::state_area_code(state_idx);
            let phone = area_code * 10_000_000 + h as i64;
            let zip =
                pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + zip_block as i64 * 40;
            let last_name = pools::LAST_NAMES[bucket(h, households, 480) % 10];
            // Person drivers: a first-name index (→ gender, marital, child)
            // and a salary bracket (→ tax via the state's flat rate), both
            // with graded derivations.
            let first_idx = rng.gen_range(0..pools::FIRST_NAMES.len());
            // One shared threshold derivation (not modulo): the three
            // demographic flags partition the first names identically, so
            // the pair pattern of the whole block collapses to three cases
            // (same name / same half / different halves).
            let gender = if first_idx < 6 { "F" } else { "M" };
            let marital = if first_idx < 6 { "Single" } else { "Married" };
            let has_child = if first_idx < 6 { "N" } else { "Y" };
            let bracket = rng.gen_range(0..6i64);
            let salary = (2 + 2 * bracket) * 10_000;
            // Per-mille flat rates with a small spread (100‰..107‰): rates
            // are still a function of the state, but the spread is below the
            // bracket ratio, so the cross-row tax order is fully determined
            // by (salary order, state order) — no independent order dim.
            let tax_rate = 100 + state_idx as i64;
            let tax = salary * tax_rate / 1_000;
            // Exemption value sets are disjoint (no shared 0), so the
            // shared-values rule generates no cross-column predicates here.
            let single_exemption = if marital == "Single" { 3_500 } else { 0 };
            let child_exemption = if has_child == "Y" { 1_500 } else { 200 };
            b.push_row(vec![
                Value::from(pools::FIRST_NAMES[first_idx]),
                Value::from(last_name),
                Value::from(gender),
                Value::Int(area_code),
                Value::Int(phone),
                Value::from(city),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::from(marital),
                Value::from(has_child),
                Value::Int(salary),
                Value::Int(tax_rate),
                Value::Int(tax),
                Value::Int(single_exemption),
                Value::Int(child_exemption),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("tax rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            hierarchies: vec![&["Zip", "City", "State"]],
            fds: vec![
                // Golden set (Table 4: 8 FD-style rules + 1 order rule).
                Fd {
                    lhs: &["Zip"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Zip"],
                    rhs: "City",
                    golden: true,
                },
                Fd {
                    lhs: &["AreaCode"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["Phone"],
                    rhs: "AreaCode",
                    golden: true,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["State"],
                    rhs: "TaxRate",
                    golden: true,
                },
                Fd {
                    lhs: &["MaritalStatus"],
                    rhs: "SingleExemption",
                    golden: true,
                },
                Fd {
                    lhs: &["HasChild"],
                    rhs: "ChildExemption",
                    golden: true,
                },
                // Structural (non-golden) dependencies of the generator.
                Fd {
                    lhs: &["State", "Salary"],
                    rhs: "Tax",
                    golden: false,
                },
                Fd {
                    lhs: &["Phone"],
                    rhs: "Zip",
                    golden: false,
                },
                Fd {
                    lhs: &["FirstName"],
                    rhs: "Gender",
                    golden: false,
                },
                Fd {
                    lhs: &["FirstName"],
                    rhs: "MaritalStatus",
                    golden: false,
                },
                Fd {
                    lhs: &["FirstName"],
                    rhs: "HasChild",
                    golden: false,
                },
            ],
            monotones: vec![Monotone {
                group: &["State"],
                driver: "Salary",
                dependent: "Tax",
                decreasing: false,
                golden: true,
            }],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_fifteen_attributes() {
        assert_eq!(TaxDataset.schema().arity(), 15);
    }

    #[test]
    fn all_nine_golden_dcs_resolve() {
        let r = TaxDataset.generate(100, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(TaxDataset.correlation().golden_count(), 9);
        assert_eq!(TaxDataset.golden_dcs(&space).len(), 9);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = TaxDataset.generate(300, 1);
        TaxDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn tax_is_monotone_in_salary_within_each_state() {
        let r = TaxDataset.generate(200, 1);
        let schema = TaxDataset.schema();
        let state = schema.index_of("State").unwrap();
        let salary = schema.index_of("Salary").unwrap();
        let tax = schema.index_of("Tax").unwrap();
        for a in 0..r.len() {
            for b in 0..r.len() {
                if r.value(a, state).sem_eq(&r.value(b, state)) {
                    let (sa, sb) = (r.value(a, salary), r.value(b, salary));
                    let (ta, tb) = (r.value(a, tax), r.value(b, tax));
                    if sa.as_i64().unwrap() > sb.as_i64().unwrap() {
                        assert!(ta.as_i64().unwrap() >= tb.as_i64().unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn zip_codes_do_not_cross_states() {
        let r = TaxDataset.generate(300, 2);
        let schema = TaxDataset.schema();
        let state = schema.index_of("State").unwrap();
        let zip = schema.index_of("Zip").unwrap();
        use std::collections::HashMap;
        let mut zip_state: HashMap<i64, Value> = HashMap::new();
        for row in 0..r.len() {
            let z = r.value(row, zip).as_i64().unwrap();
            let s = r.value(row, state);
            if let Some(prev) = zip_state.get(&z) {
                assert!(prev.sem_eq(&s), "zip {z} in two states");
            } else {
                zip_state.insert(z, s);
            }
        }
    }
}
