//! Synthetic analog of the **Tax** dataset (1 M tuples, 15 attributes,
//! 9 golden DCs in the paper). Person-level tax records where, within a
//! state, tax owed grows monotonically with salary.

use crate::generator::{pick, pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Tax analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct TaxDataset;

impl DatasetGenerator for TaxDataset {
    fn name(&self) -> &'static str {
        "Tax"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("FirstName", AttributeType::Text),
            ("LastName", AttributeType::Text),
            ("Gender", AttributeType::Text),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("MaritalStatus", AttributeType::Text),
            ("HasChild", AttributeType::Text),
            ("Salary", AttributeType::Integer),
            ("TaxRate", AttributeType::Integer),
            ("Tax", AttributeType::Integer),
            ("SingleExemption", AttributeType::Integer),
            ("ChildExemption", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        1_000_000
    }

    fn paper_golden_dcs(&self) -> usize {
        9
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        for i in 0..rows {
            let state_idx = rng.gen_range(0..pools::STATES.len());
            let city_sel = rng.gen_range(0..2usize);
            let city = pools::CITIES[state_idx * 2 + city_sel];
            let area_code = pools::state_area_code(state_idx);
            let phone = area_code * 10_000_000 + i as i64;
            let zip = pools::state_zip_base(state_idx)
                + city_sel as i64 * 1_000
                + rng.gen_range(0..1_000);
            let marital = if rng.gen_bool(0.5) {
                "Single"
            } else {
                "Married"
            };
            let has_child = if rng.gen_bool(0.4) { "Y" } else { "N" };
            let salary = rng.gen_range(20..150) * 1_000i64;
            // Per-state flat tax rate => tax is monotone in salary within a state.
            let tax_rate = 10 + state_idx as i64;
            let tax = salary * tax_rate / 100;
            let single_exemption = if marital == "Single" { 3_000 } else { 0 };
            let child_exemption = if has_child == "Y" { 1_000 } else { 0 };
            b.push_row(vec![
                Value::from(*pick(&mut rng, &pools::FIRST_NAMES)),
                Value::from(*pick(&mut rng, &pools::LAST_NAMES)),
                Value::from(if rng.gen_bool(0.5) { "F" } else { "M" }),
                Value::Int(area_code),
                Value::Int(phone),
                Value::from(city),
                Value::from(pools::STATES[state_idx]),
                Value::Int(zip),
                Value::from(marital),
                Value::from(has_child),
                Value::Int(salary),
                Value::Int(tax_rate),
                Value::Int(tax),
                Value::Int(single_exemption),
                Value::Int(child_exemption),
            ])
            .expect("tax rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // Within a state, higher salary implies at-least-as-high tax.
                &[
                    ("State", "=", Other, "State"),
                    ("Salary", ">", Other, "Salary"),
                    ("Tax", "<", Other, "Tax"),
                ],
                // Zip codes do not cross state or city boundaries.
                &[("Zip", "=", Other, "Zip"), ("State", "≠", Other, "State")],
                &[("Zip", "=", Other, "Zip"), ("City", "≠", Other, "City")],
                // Area codes are state-specific; phone numbers embed the area code.
                &[
                    ("AreaCode", "=", Other, "AreaCode"),
                    ("State", "≠", Other, "State"),
                ],
                &[
                    ("Phone", "=", Other, "Phone"),
                    ("AreaCode", "≠", Other, "AreaCode"),
                ],
                // Cities belong to a single state.
                &[("City", "=", Other, "City"), ("State", "≠", Other, "State")],
                // The tax rate is a function of the state.
                &[
                    ("State", "=", Other, "State"),
                    ("TaxRate", "≠", Other, "TaxRate"),
                ],
                // Exemptions are functions of marital status / children.
                &[
                    ("MaritalStatus", "=", Other, "MaritalStatus"),
                    ("SingleExemption", "≠", Other, "SingleExemption"),
                ],
                &[
                    ("HasChild", "=", Other, "HasChild"),
                    ("ChildExemption", "≠", Other, "ChildExemption"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_fifteen_attributes() {
        assert_eq!(TaxDataset.schema().arity(), 15);
    }

    #[test]
    fn all_nine_golden_dcs_resolve() {
        let r = TaxDataset.generate(100, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(TaxDataset.golden_dcs(&space).len(), 9);
    }

    #[test]
    fn tax_is_monotone_in_salary_within_each_state() {
        let r = TaxDataset.generate(200, 1);
        let schema = TaxDataset.schema();
        let state = schema.index_of("State").unwrap();
        let salary = schema.index_of("Salary").unwrap();
        let tax = schema.index_of("Tax").unwrap();
        for a in 0..r.len() {
            for b in 0..r.len() {
                if r.value(a, state).sem_eq(&r.value(b, state)) {
                    let (sa, sb) = (r.value(a, salary), r.value(b, salary));
                    let (ta, tb) = (r.value(a, tax), r.value(b, tax));
                    if sa.as_i64().unwrap() > sb.as_i64().unwrap() {
                        assert!(ta.as_i64().unwrap() >= tb.as_i64().unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn zip_codes_do_not_cross_states() {
        let r = TaxDataset.generate(300, 2);
        let schema = TaxDataset.schema();
        let state = schema.index_of("State").unwrap();
        let zip = schema.index_of("Zip").unwrap();
        use std::collections::HashMap;
        let mut zip_state: HashMap<i64, Value> = HashMap::new();
        for row in 0..r.len() {
            let z = r.value(row, zip).as_i64().unwrap();
            let s = r.value(row, state);
            if let Some(prev) = zip_state.get(&z) {
                assert!(prev.sem_eq(&s), "zip {z} in two states");
            } else {
                zip_state.insert(z, s);
            }
        }
    }
}
