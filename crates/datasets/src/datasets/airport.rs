//! Synthetic analog of the **Airport** dataset (55 K tuples, 12 attributes,
//! 9 golden DCs). One row per airport; identifiers are unique and
//! geographic attributes are functionally dependent on the state.

use crate::generator::{pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Airport analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct AirportDataset;

impl DatasetGenerator for AirportDataset {
    fn name(&self) -> &'static str {
        "Airport"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("AirportID", AttributeType::Integer),
            ("Name", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Country", AttributeType::Text),
            ("IATA", AttributeType::Text),
            ("ICAO", AttributeType::Text),
            ("Latitude", AttributeType::Float),
            ("Longitude", AttributeType::Float),
            ("Altitude", AttributeType::Integer),
            ("TimezoneOffset", AttributeType::Integer),
            ("DST", AttributeType::Text),
        ])
    }

    fn default_rows(&self) -> usize {
        1_500
    }

    fn paper_rows(&self) -> usize {
        55_000
    }

    fn paper_golden_dcs(&self) -> usize {
        9
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        for i in 0..rows {
            let state_idx = rng.gen_range(0..pools::STATES.len());
            let city_sel = rng.gen_range(0..2usize);
            let city_idx = state_idx * 2 + city_sel;
            // Timezone offset and DST flag are functions of the state.
            let tz = -5 - (state_idx as i64 % 4);
            let dst = if state_idx % 2 == 0 { "A" } else { "N" };
            b.push_row(vec![
                Value::Int(i as i64),
                Value::from(format!("{} Field {i}", pools::CITIES[city_idx])),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::from("US"),
                Value::from(format!("A{i:04}")),
                Value::from(format!("KA{i:04}")),
                Value::Float(25.0 + (state_idx as f64) * 3.0 + rng.gen_range(0.0..2.0)),
                Value::Float(-70.0 - (state_idx as f64) * 5.0 - rng.gen_range(0.0..2.0)),
                Value::Int(rng.gen_range(0..9_000)),
                Value::Int(tz),
                Value::from(dst),
            ])
            .expect("airport rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // Identifiers are keys.
                &[("AirportID", "=", Other, "AirportID")],
                &[("IATA", "=", Other, "IATA"), ("Name", "≠", Other, "Name")],
                &[("ICAO", "=", Other, "ICAO"), ("IATA", "≠", Other, "IATA")],
                &[("Name", "=", Other, "Name"), ("City", "≠", Other, "City")],
                // Geography is consistent.
                &[("City", "=", Other, "City"), ("State", "≠", Other, "State")],
                &[
                    ("State", "=", Other, "State"),
                    ("Country", "≠", Other, "Country"),
                ],
                // Timezone and DST are functions of the state.
                &[
                    ("State", "=", Other, "State"),
                    ("TimezoneOffset", "≠", Other, "TimezoneOffset"),
                ],
                &[("State", "=", Other, "State"), ("DST", "≠", Other, "DST")],
                &[
                    ("City", "=", Other, "City"),
                    ("TimezoneOffset", "≠", Other, "TimezoneOffset"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_twelve_attributes() {
        assert_eq!(AirportDataset.schema().arity(), 12);
    }

    #[test]
    fn all_nine_golden_dcs_resolve() {
        let r = AirportDataset.generate(100, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(AirportDataset.golden_dcs(&space).len(), 9);
    }

    #[test]
    fn identifiers_are_unique() {
        let r = AirportDataset.generate(200, 4);
        let schema = AirportDataset.schema();
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        let mut iatas = HashSet::new();
        for row in 0..r.len() {
            ids.insert(
                r.value(row, schema.index_of("AirportID").unwrap())
                    .to_string(),
            );
            iatas.insert(r.value(row, schema.index_of("IATA").unwrap()).to_string());
        }
        assert_eq!(ids.len(), r.len());
        assert_eq!(iatas.len(), r.len());
    }
}
