//! Synthetic analog of the **Airport** dataset (55 K tuples, 12 attributes,
//! 9 golden DCs). One row per airport; identifiers are unique and
//! geographic attributes are functionally dependent on the state.
//!
//! Correlation model: the state index is the master driver — city, country,
//! timezone, DST flag, and the coordinate bands all derive from it, with
//! latitude/longitude bands disjoint per state so coordinate order equals
//! state order. Identifiers embed the row index, and the altitude is a
//! function of (city, altitude tier).

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd, Key};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Airport analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct AirportDataset;

impl DatasetGenerator for AirportDataset {
    fn name(&self) -> &'static str {
        "Airport"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("AirportID", AttributeType::Integer),
            ("Name", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Country", AttributeType::Text),
            ("IATA", AttributeType::Text),
            ("ICAO", AttributeType::Text),
            ("Latitude", AttributeType::Float),
            ("Longitude", AttributeType::Float),
            ("Altitude", AttributeType::Integer),
            ("TimezoneOffset", AttributeType::Integer),
            ("DST", AttributeType::Text),
        ])
    }

    fn default_rows(&self) -> usize {
        1_500
    }

    fn paper_rows(&self) -> usize {
        55_000
    }

    fn paper_golden_dcs(&self) -> usize {
        9
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        for i in 0..rows {
            // Drivers: the city index (which nests inside the state and
            // fixes timezone, DST, and the coordinate/altitude bands via
            // graded derivations) and a small in-band offset shared by both
            // coordinates and the altitude.
            let city_idx = rng.gen_range(0..pools::CITIES.len());
            let state_idx = city_idx / 2;
            let tz = -5 - bucket(state_idx, pools::STATES.len(), 4) as i64;
            let dst = if state_idx < 4 { "A" } else { "N" };
            // Coordinate bands are disjoint per state (band gap 3.0 / 5.0,
            // in-band offsets ≤ 1.0), so coordinate order equals state
            // order; within a band, latitude, longitude, and altitude all
            // follow the same offset driver.
            let offset = rng.gen_range(0..=2i64);
            b.push_row(vec![
                // Id range kept above every altitude value so the
                // shared-values rule never compares the two columns.
                Value::Int(7_000 + i as i64),
                Value::from(format!("{} Field {i}", pools::CITIES[city_idx])),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::from("US"),
                Value::from(format!("A{i:04}")),
                Value::from(format!("KA{i:04}")),
                Value::Float(25.0 + (state_idx as f64) * 3.0 + offset as f64 * 0.5),
                Value::Float(-70.0 - (state_idx as f64) * 5.0 - offset as f64 * 0.5),
                Value::Int(1_000 + 200 * city_idx as i64 + 50 * offset),
                Value::Int(tz),
                Value::from(dst),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("airport rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            keys: vec![
                Key {
                    attr: "AirportID",
                    golden: true,
                },
                Key {
                    attr: "IATA",
                    golden: false,
                },
                Key {
                    attr: "ICAO",
                    golden: false,
                },
                Key {
                    attr: "Name",
                    golden: false,
                },
            ],
            hierarchies: vec![&["City", "State", "Country"]],
            fds: vec![
                // Golden set (Table 4: key + 8 FD-style rules).
                Fd {
                    lhs: &["IATA"],
                    rhs: "Name",
                    golden: true,
                },
                Fd {
                    lhs: &["ICAO"],
                    rhs: "IATA",
                    golden: true,
                },
                Fd {
                    lhs: &["Name"],
                    rhs: "City",
                    golden: true,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["State"],
                    rhs: "Country",
                    golden: true,
                },
                Fd {
                    lhs: &["State"],
                    rhs: "TimezoneOffset",
                    golden: true,
                },
                Fd {
                    lhs: &["State"],
                    rhs: "DST",
                    golden: true,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "TimezoneOffset",
                    golden: true,
                },
            ],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_twelve_attributes() {
        assert_eq!(AirportDataset.schema().arity(), 12);
    }

    #[test]
    fn all_nine_golden_dcs_resolve() {
        let r = AirportDataset.generate(100, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(AirportDataset.correlation().golden_count(), 9);
        assert_eq!(AirportDataset.golden_dcs(&space).len(), 9);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = AirportDataset.generate(250, 6);
        AirportDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn identifiers_are_unique() {
        let r = AirportDataset.generate(200, 4);
        let schema = AirportDataset.schema();
        use std::collections::HashSet;
        let mut ids = HashSet::new();
        let mut iatas = HashSet::new();
        for row in 0..r.len() {
            ids.insert(
                r.value(row, schema.index_of("AirportID").unwrap())
                    .to_string(),
            );
            iatas.insert(r.value(row, schema.index_of("IATA").unwrap()).to_string());
        }
        assert_eq!(ids.len(), r.len());
        assert_eq!(iatas.len(), r.len());
    }
}
