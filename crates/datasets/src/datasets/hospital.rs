//! Synthetic analog of the **Hospital** dataset (115 K tuples, 19 attributes,
//! 7 golden DCs). One row per (provider, quality measure), with
//! provider-level attributes repeated across that provider's rows.
//!
//! Correlation model: the provider id is the master driver — every
//! provider-level attribute (name, address, geography, phone, type, owner,
//! emergency service, sample size) is a deterministic function of it, with
//! zip/area-code/phone orders aligned with the state index and provider id.
//! The measure code is the second driver and fixes the measure name,
//! condition family, and measure year. The score is a function of
//! (state, measure, small offset driver) centred on the state average, which
//! itself is a function of (state, measure).

use crate::generator::{bucket, pools, CorrelationSpec, DatasetGenerator, Fd};
use adc_data::{AttributeType, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Hospital analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct HospitalDataset;

impl DatasetGenerator for HospitalDataset {
    fn name(&self) -> &'static str {
        "Hospital"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("ProviderID", AttributeType::Integer),
            ("HospitalName", AttributeType::Text),
            ("Address", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("County", AttributeType::Text),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("HospitalType", AttributeType::Text),
            ("Owner", AttributeType::Text),
            ("EmergencyService", AttributeType::Text),
            ("Condition", AttributeType::Text),
            ("MeasureCode", AttributeType::Text),
            ("MeasureName", AttributeType::Text),
            ("Score", AttributeType::Integer),
            ("Sample", AttributeType::Integer),
            ("StateAvg", AttributeType::Integer),
            ("MeasureYear", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        115_000
    }

    fn paper_golden_dcs(&self) -> usize {
        7
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let num_providers = (rows / 8).max(1);
        // Provider-level categoricals are graded with bucket counts from
        // the chain 2 | 4 | 8 | 16 | 64, so every derived partition nests
        // inside the next (laminar structure): the pair pattern of the whole
        // provider block is just the finest level at which two providers
        // still agree, times the provider order.
        let types = ["Acute Care", "Critical Access"];
        let owners = [
            "Government",
            "Proprietary",
            "Voluntary non-profit",
            "Physician",
        ];
        for i in 0..rows {
            // Provider driver: fixes every provider-level attribute through
            // nested graded buckets, so geography, phone, type, owner,
            // emergency service, and sample size all share the provider
            // order.
            let pid = i % num_providers;
            let state_idx = bucket(pid, num_providers, pools::STATES.len());
            let city_sel = bucket(pid, num_providers, 16) % 2;
            let city_idx = state_idx * 2 + city_sel;
            let zip_block = bucket(pid, num_providers, 64) % 4;
            let area_code = pools::state_area_code(state_idx);
            // Measure driver: fixes code, name, condition, and year.
            let measure_idx = rng.gen_range(0..pools::MEASURE_CODES.len());
            let code = pools::MEASURE_CODES[measure_idx];
            let condition = code.split('-').next().unwrap_or(code);
            // StateAvg is a *graded* function of (state, measure) — linear,
            // not modular, so its cross-row order follows the two driver
            // orders. The score sits 5 points around it, driven by a small
            // per-row offset whose effect never crosses a neighbouring
            // average (gaps of 20 per state step, 200 per measure step).
            let state_avg = 40 + 20 * state_idx as i64 + 200 * measure_idx as i64;
            let score_offset = rng.gen_range(-1..=1i64);
            b.push_row(vec![
                Value::Int(10_000 + pid as i64),
                Value::from(format!("General Hospital {pid}")),
                Value::from(format!("{} Main St", 100 + pid)),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(
                    pools::state_zip_base(state_idx)
                        + city_sel as i64 * 1_000
                        + zip_block as i64 * 25,
                ),
                Value::from(pools::COUNTIES[city_idx]),
                Value::Int(area_code),
                Value::Int(area_code * 10_000_000 + pid as i64),
                Value::from(types[bucket(pid, num_providers, 2)]),
                Value::from(owners[bucket(pid, num_providers, 4)]),
                Value::from(if bucket(pid, num_providers, 2) == 0 {
                    "Yes"
                } else {
                    "No"
                }),
                Value::from(condition),
                Value::from(code),
                Value::from(format!("Measure {code}")),
                Value::Int(state_avg + 5 * score_offset),
                // Sample sizes sit between the score range (≤ 1600) and the
                // zip/id ranges (≥ 10000), clear of both.
                Value::Int(5_000 + 25 * bucket(pid, num_providers, 4) as i64),
                Value::Int(state_avg),
                // Year buckets align exactly with the condition families, so
                // the measure block is a three-level chain (same code, same
                // condition/year, different family).
                Value::Int(2_018 + bucket(measure_idx, pools::MEASURE_CODES.len(), 4) as i64),
            ])
            // conformance: allow(panic) — generated cells match the static schema literal above by construction
            .expect("hospital rows are well typed");
        }
        b.build()
    }

    fn correlation(&self) -> CorrelationSpec {
        CorrelationSpec {
            hierarchies: vec![&["Zip", "City", "State"]],
            fds: vec![
                // Golden set (Table 4: 7 rules).
                Fd {
                    lhs: &["Zip"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "State",
                    golden: true,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "HospitalName",
                    golden: true,
                },
                Fd {
                    lhs: &["Phone"],
                    rhs: "ProviderID",
                    golden: true,
                },
                Fd {
                    lhs: &["MeasureCode"],
                    rhs: "MeasureName",
                    golden: true,
                },
                Fd {
                    lhs: &["MeasureCode"],
                    rhs: "Condition",
                    golden: true,
                },
                Fd {
                    lhs: &["State", "MeasureCode"],
                    rhs: "StateAvg",
                    golden: true,
                },
                // Structural (non-golden) provider- and measure-level FDs.
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "Address",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "City",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "Zip",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "County",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "AreaCode",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "Phone",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "HospitalType",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "Owner",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "EmergencyService",
                    golden: false,
                },
                Fd {
                    lhs: &["ProviderID"],
                    rhs: "Sample",
                    golden: false,
                },
                Fd {
                    lhs: &["City"],
                    rhs: "County",
                    golden: false,
                },
                Fd {
                    lhs: &["AreaCode"],
                    rhs: "State",
                    golden: false,
                },
                Fd {
                    lhs: &["MeasureCode"],
                    rhs: "MeasureYear",
                    golden: false,
                },
            ],
            ..CorrelationSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::{PredicateSpace, SpaceConfig};

    #[test]
    fn schema_has_nineteen_attributes() {
        assert_eq!(HospitalDataset.schema().arity(), 19);
    }

    #[test]
    fn all_seven_golden_dcs_resolve() {
        let r = HospitalDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(HospitalDataset.correlation().golden_count(), 7);
        assert_eq!(HospitalDataset.golden_dcs(&space).len(), 7);
    }

    #[test]
    fn clean_data_satisfies_the_correlation_spec() {
        let r = HospitalDataset.generate(320, 5);
        HospitalDataset.correlation().verify(&r).unwrap();
    }

    #[test]
    fn provider_attributes_are_functionally_determined() {
        let r = HospitalDataset.generate(160, 9);
        let schema = HospitalDataset.schema();
        let pid = schema.index_of("ProviderID").unwrap();
        let name = schema.index_of("HospitalName").unwrap();
        let phone = schema.index_of("Phone").unwrap();
        use std::collections::HashMap;
        let mut by_pid: HashMap<i64, (String, i64)> = HashMap::new();
        for row in 0..r.len() {
            let id = r.value(row, pid).as_i64().unwrap();
            let entry = (
                r.value(row, name).to_string(),
                r.value(row, phone).as_i64().unwrap(),
            );
            if let Some(prev) = by_pid.get(&id) {
                assert_eq!(prev, &entry);
            } else {
                by_pid.insert(id, entry);
            }
        }
        assert!(by_pid.len() > 1);
    }
}
