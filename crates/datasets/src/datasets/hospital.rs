//! Synthetic analog of the **Hospital** dataset (115 K tuples, 19 attributes,
//! 7 golden DCs). One row per (provider, quality measure), with
//! provider-level attributes repeated across that provider's rows.

use crate::generator::{pools, resolve_dcs, DatasetGenerator};
use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator for the Hospital analog.
#[derive(Debug, Clone, Copy, Default)]
pub struct HospitalDataset;

impl DatasetGenerator for HospitalDataset {
    fn name(&self) -> &'static str {
        "Hospital"
    }

    fn schema(&self) -> Schema {
        Schema::of(&[
            ("ProviderID", AttributeType::Integer),
            ("HospitalName", AttributeType::Text),
            ("Address", AttributeType::Text),
            ("City", AttributeType::Text),
            ("State", AttributeType::Text),
            ("Zip", AttributeType::Integer),
            ("County", AttributeType::Text),
            ("AreaCode", AttributeType::Integer),
            ("Phone", AttributeType::Integer),
            ("HospitalType", AttributeType::Text),
            ("Owner", AttributeType::Text),
            ("EmergencyService", AttributeType::Text),
            ("Condition", AttributeType::Text),
            ("MeasureCode", AttributeType::Text),
            ("MeasureName", AttributeType::Text),
            ("Score", AttributeType::Integer),
            ("Sample", AttributeType::Integer),
            ("StateAvg", AttributeType::Integer),
            ("MeasureYear", AttributeType::Integer),
        ])
    }

    fn default_rows(&self) -> usize {
        2_000
    }

    fn paper_rows(&self) -> usize {
        115_000
    }

    fn paper_golden_dcs(&self) -> usize {
        7
    }

    fn generate(&self, rows: usize, seed: u64) -> Relation {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = Relation::builder(self.schema());
        let num_providers = (rows / 8).max(1);
        let types = ["Acute Care", "Critical Access", "Childrens"];
        let owners = ["Government", "Proprietary", "Voluntary non-profit"];
        // Provider-level attributes, fixed per provider id.
        let providers: Vec<(usize, usize)> = (0..num_providers)
            .map(|_| {
                (
                    rng.gen_range(0..pools::STATES.len()),
                    rng.gen_range(0..2usize),
                )
            })
            .collect();
        for i in 0..rows {
            let pid = i % num_providers;
            let (state_idx, city_sel) = providers[pid];
            let city_idx = state_idx * 2 + city_sel;
            let measure_idx = rng.gen_range(0..pools::MEASURE_CODES.len());
            let code = pools::MEASURE_CODES[measure_idx];
            // Condition is the measure-code family (prefix before '-').
            let condition = code.split('-').next().unwrap_or(code);
            // StateAvg is a deterministic function of (state, measure).
            let state_avg = 40 + (7 * state_idx + 11 * measure_idx) as i64 % 60;
            b.push_row(vec![
                Value::Int(10_000 + pid as i64),
                Value::from(format!("General Hospital {pid}")),
                Value::from(format!("{} Main St", 100 + pid)),
                Value::from(pools::CITIES[city_idx]),
                Value::from(pools::STATES[state_idx]),
                Value::Int(
                    pools::state_zip_base(state_idx) + city_sel as i64 * 1_000 + (pid as i64 % 500),
                ),
                Value::from(pools::COUNTIES[city_idx]),
                Value::Int(pools::state_area_code(state_idx)),
                Value::Int(pools::state_area_code(state_idx) * 10_000_000 + pid as i64),
                Value::from(types[pid % types.len()]),
                Value::from(owners[pid % owners.len()]),
                Value::from(if pid.is_multiple_of(2) { "Yes" } else { "No" }),
                Value::from(condition),
                Value::from(code),
                Value::from(format!("Measure {code}")),
                Value::Int(rng.gen_range(10..100)),
                Value::Int(rng.gen_range(5..500)),
                Value::Int(state_avg),
                Value::Int(2018 + (measure_idx as i64 % 3)),
            ])
            .expect("hospital rows are well typed");
        }
        b.build()
    }

    fn golden_dcs(&self, space: &PredicateSpace) -> Vec<DenialConstraint> {
        use TupleRole::Other;
        resolve_dcs(
            space,
            &[
                // Zip codes and cities do not cross state boundaries.
                &[("Zip", "=", Other, "Zip"), ("State", "≠", Other, "State")],
                &[("City", "=", Other, "City"), ("State", "≠", Other, "State")],
                // The provider id determines the hospital name and the phone number.
                &[
                    ("ProviderID", "=", Other, "ProviderID"),
                    ("HospitalName", "≠", Other, "HospitalName"),
                ],
                &[
                    ("Phone", "=", Other, "Phone"),
                    ("ProviderID", "≠", Other, "ProviderID"),
                ],
                // The measure code determines its name and condition family.
                &[
                    ("MeasureCode", "=", Other, "MeasureCode"),
                    ("MeasureName", "≠", Other, "MeasureName"),
                ],
                &[
                    ("MeasureCode", "=", Other, "MeasureCode"),
                    ("Condition", "≠", Other, "Condition"),
                ],
                // The state average is a function of (state, measure code).
                &[
                    ("State", "=", Other, "State"),
                    ("MeasureCode", "=", Other, "MeasureCode"),
                    ("StateAvg", "≠", Other, "StateAvg"),
                ],
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn schema_has_nineteen_attributes() {
        assert_eq!(HospitalDataset.schema().arity(), 19);
    }

    #[test]
    fn all_seven_golden_dcs_resolve() {
        let r = HospitalDataset.generate(120, 3);
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert_eq!(HospitalDataset.golden_dcs(&space).len(), 7);
    }

    #[test]
    fn provider_attributes_are_functionally_determined() {
        let r = HospitalDataset.generate(160, 9);
        let schema = HospitalDataset.schema();
        let pid = schema.index_of("ProviderID").unwrap();
        let name = schema.index_of("HospitalName").unwrap();
        let phone = schema.index_of("Phone").unwrap();
        use std::collections::HashMap;
        let mut by_pid: HashMap<i64, (String, i64)> = HashMap::new();
        for row in 0..r.len() {
            let id = r.value(row, pid).as_i64().unwrap();
            let entry = (
                r.value(row, name).to_string(),
                r.value(row, phone).as_i64().unwrap(),
            );
            if let Some(prev) = by_pid.get(&id) {
                assert_eq!(prev, &entry);
            } else {
                by_pid.insert(id, entry);
            }
        }
        assert!(by_pid.len() > 1);
    }
}
