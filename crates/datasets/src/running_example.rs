//! The paper's running example (Table 1) and the two DCs of Example 1.2.

use adc_core::DenialConstraint;
use adc_data::{AttributeType, Relation, Schema, Value};
use adc_predicates::{PredicateSpace, TupleRole};

/// Build the 15-tuple relation of Table 1 of the paper
/// (Name, State, Zip, Income, Tax).
pub fn running_example() -> Relation {
    let schema = Schema::of(&[
        ("Name", AttributeType::Text),
        ("State", AttributeType::Text),
        ("Zip", AttributeType::Integer),
        ("Income", AttributeType::Integer),
        ("Tax", AttributeType::Integer),
    ]);
    let rows: [(&str, &str, i64, i64, i64); 15] = [
        ("Alice", "NY", 11803, 28_000, 2_400),
        ("Mark", "NY", 10102, 42_000, 4_700),
        ("Bob", "NY", 13914, 93_000, 11_800),
        ("Mary", "NY", 10437, 58_000, 6_700),
        ("Alice", "NY", 10437, 26_000, 2_100),
        ("Julia", "WA", 98112, 27_000, 1_400),
        ("Jimmy", "WA", 98112, 24_000, 1_600),
        ("Sam", "WA", 98112, 49_000, 6_800),
        ("Jeff", "WA", 98112, 56_000, 7_800),
        ("Gary", "WA", 98112, 50_000, 7_200),
        ("Ron", "WA", 98112, 58_000, 8_000),
        ("Jennifer", "WA", 98112, 61_000, 8_500),
        ("Adam", "WA", 98112, 20_000, 1_000),
        ("Tim", "IL", 62078, 39_000, 5_000),
        ("Sarah", "IL", 98112, 54_000, 5_000),
    ];
    let mut b = Relation::builder(schema);
    for (n, s, z, i, t) in rows {
        b.push_row(vec![
            n.into(),
            s.into(),
            Value::Int(z),
            Value::Int(i),
            Value::Int(t),
        ])
        // conformance: allow(panic) — the fixed example rows match the static schema by construction
        .expect("running example rows are well typed");
    }
    b.build()
}

/// ϕ₁ of Example 1.1/1.2: `¬(State = State' ∧ Income > Income' ∧ Tax ≤ Tax')`
/// — within a state, a higher income implies a higher tax payment.
///
/// # Panics
/// Panics if `space` was not built over the running example's schema.
pub fn phi1(space: &PredicateSpace) -> DenialConstraint {
    DenialConstraint::new(vec![
        space
            .find("State", "=", TupleRole::Other, "State")
            // conformance: allow(panic) — documented panic: phi lookups require the running example schema
            .expect("State = predicate"),
        space
            .find("Income", ">", TupleRole::Other, "Income")
            // conformance: allow(panic) — documented panic: phi lookups require the running example schema
            .expect("Income > predicate"),
        space
            .find("Tax", "≤", TupleRole::Other, "Tax")
            // conformance: allow(panic) — documented panic: phi lookups require the running example schema
            .expect("Tax ≤ predicate"),
    ])
}

/// ϕ₂ of Example 1.2: `¬(Zip = Zip' ∧ State ≠ State')` — the same zip code
/// cannot appear in two different states.
///
/// # Panics
/// Panics if `space` was not built over the running example's schema.
pub fn phi2(space: &PredicateSpace) -> DenialConstraint {
    DenialConstraint::new(vec![
        space
            .find("Zip", "=", TupleRole::Other, "Zip")
            // conformance: allow(panic) — documented panic: phi lookups require the running example schema
            .expect("Zip = predicate"),
        space
            .find("State", "≠", TupleRole::Other, "State")
            // conformance: allow(panic) — documented panic: phi lookups require the running example schema
            .expect("State ≠ predicate"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_predicates::SpaceConfig;

    #[test]
    fn table_1_shape() {
        let r = running_example();
        assert_eq!(r.len(), 15);
        assert_eq!(r.arity(), 5);
        assert_eq!(r.ordered_pair_count(), 210);
        assert_eq!(r.value(5, 0), Value::from("Julia"));
        assert_eq!(r.value(14, 2), Value::Int(98112));
    }

    #[test]
    fn example_1_2_violation_counts() {
        let r = running_example();
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        // ϕ₁: exactly 2 of 210 ordered pairs violate ((t6,t7) and (t14,t15)).
        assert_eq!(phi1(&space).count_violations(&space, &r), 2);
        // ϕ₂: 16 of 210 ordered pairs violate (t15 against each of t6..t13, both orders).
        assert_eq!(phi2(&space).count_violations(&space, &r), 16);
    }

    #[test]
    fn example_dcs_are_not_exact() {
        let r = running_example();
        let space = PredicateSpace::build(&r, SpaceConfig::default());
        assert!(!phi1(&space).is_valid(&space, &r));
        assert!(!phi2(&space).is_valid(&space, &r));
    }
}
