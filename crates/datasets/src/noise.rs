//! Noise injection (Section 8.4 of the paper).
//!
//! The qualitative analysis dirties each dataset in two ways:
//!
//! * **Spread noise** — every *cell* is modified independently with
//!   probability `p` (0.001 in the paper); a modified cell takes, with equal
//!   probability, either a random value from the active domain of its column
//!   or a "typo" (a perturbed version of the original value).
//! * **Skewed (concentrated) noise** — only a `p` fraction of the *tuples*
//!   are touched, but the errors are concentrated inside those tuples.
//!
//! Both injectors are deterministic given a seed and report which cells they
//! changed, so tests can verify the error budget precisely.

use adc_data::{Column, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Noise-injection parameters.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Cell (spread) or tuple (skewed) modification probability.
    pub rate: f64,
    /// Probability that a modified cell receives an active-domain value
    /// (otherwise it receives a typo). The paper uses 0.5.
    pub active_domain_probability: f64,
    /// Probability that a cell inside a noisy tuple is modified (skewed noise
    /// only). Values close to 1 concentrate many errors in few tuples.
    pub cell_probability_within_tuple: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            rate: 0.001,
            active_domain_probability: 0.5,
            cell_probability_within_tuple: 0.5,
        }
    }
}

impl NoiseConfig {
    /// A configuration with the given modification rate and paper defaults
    /// for everything else.
    pub fn with_rate(rate: f64) -> Self {
        NoiseConfig {
            rate,
            ..Default::default()
        }
    }
}

/// A record of one modified cell.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyCell {
    /// Row of the modified cell.
    pub row: usize,
    /// Column of the modified cell.
    pub col: usize,
    /// The value before modification.
    pub original: Value,
}

/// Apply *spread* noise: each cell is modified independently with probability
/// `config.rate`. Returns the dirty relation and the list of modified cells.
pub fn spread_noise(
    relation: &Relation,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    for row in 0..relation.len() {
        for col in 0..relation.arity() {
            if rng.gen_bool(config.rate.clamp(0.0, 1.0)) {
                corrupt_cell(
                    &mut dirty,
                    relation,
                    row,
                    col,
                    config,
                    &mut rng,
                    &mut changed,
                );
            }
        }
    }
    (dirty, changed)
}

/// Apply *skewed* (error-concentrated) noise: a `config.rate` fraction of the
/// tuples is selected (at least one when the rate is positive), and cells
/// inside those tuples are modified with probability
/// `config.cell_probability_within_tuple`.
pub fn skewed_noise(
    relation: &Relation,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    let n = relation.len();
    let mut num_tuples = (n as f64 * config.rate).round() as usize;
    if num_tuples == 0 && config.rate > 0.0 && n > 0 {
        num_tuples = 1;
    }
    let noisy_rows = adc_data::sample::sample_indices(n, num_tuples, rng.gen());
    for &row in &noisy_rows {
        let mut touched_any = false;
        for col in 0..relation.arity() {
            if rng.gen_bool(config.cell_probability_within_tuple.clamp(0.0, 1.0)) {
                corrupt_cell(
                    &mut dirty,
                    relation,
                    row,
                    col,
                    config,
                    &mut rng,
                    &mut changed,
                );
                touched_any = true;
            }
        }
        if !touched_any && relation.arity() > 0 {
            // Guarantee that every selected tuple is actually dirty.
            let col = rng.gen_range(0..relation.arity());
            corrupt_cell(
                &mut dirty,
                relation,
                row,
                col,
                config,
                &mut rng,
                &mut changed,
            );
        }
    }
    (dirty, changed)
}

fn corrupt_cell(
    dirty: &mut Relation,
    original: &Relation,
    row: usize,
    col: usize,
    config: &NoiseConfig,
    rng: &mut StdRng,
    changed: &mut Vec<NoisyCell>,
) {
    let old = original.value(row, col);
    let new = if rng.gen_bool(config.active_domain_probability.clamp(0.0, 1.0)) {
        active_domain_value(original.column(col), rng)
    } else {
        typo(&old, rng)
    };
    if dirty.set_value(row, col, new).is_ok() {
        changed.push(NoisyCell {
            row,
            col,
            original: old,
        });
    }
}

/// Draw a random value from the active domain (the non-null values that
/// already appear in the column).
fn active_domain_value(column: &Column, rng: &mut StdRng) -> Value {
    let n = column.len();
    for _ in 0..16 {
        let row = rng.gen_range(0..n.max(1));
        if n > 0 && !column.is_null(row) {
            return column.value(row);
        }
    }
    Value::Null
}

/// Produce a "typo" version of a value: numeric values are perturbed by a
/// small relative amount, strings get one character substituted or appended.
fn typo(value: &Value, rng: &mut StdRng) -> Value {
    match value {
        Value::Int(i) => {
            let delta = rng.gen_range(1..=9) * 10i64.pow(rng.gen_range(0..3));
            Value::Int(if rng.gen_bool(0.5) {
                i + delta
            } else {
                i - delta
            })
        }
        Value::Float(f) => {
            let factor = 1.0 + rng.gen_range(-0.3..0.3);
            Value::Float(f * factor + 1.0)
        }
        Value::Str(s) => {
            let mut chars: Vec<char> = s.chars().collect();
            let replacement = (b'a' + rng.gen_range(0..26)) as char;
            if chars.is_empty() || rng.gen_bool(0.3) {
                chars.push(replacement);
            } else {
                let idx = rng.gen_range(0..chars.len());
                chars[idx] = replacement;
            }
            Value::Str(chars.into_iter().collect())
        }
        Value::Null => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_data::{AttributeType, Schema};

    fn relation(rows: usize) -> Relation {
        let schema = Schema::of(&[
            ("State", AttributeType::Text),
            ("Income", AttributeType::Integer),
            ("Rate", AttributeType::Float),
        ]);
        let mut b = Relation::builder(schema);
        for i in 0..rows {
            b.push_row(vec![
                Value::from(if i % 2 == 0 { "NY" } else { "WA" }),
                Value::Int(1_000 + i as i64),
                Value::Float(0.1 * (i % 7) as f64),
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn spread_noise_changes_roughly_rate_fraction_of_cells() {
        let r = relation(500);
        let cfg = NoiseConfig::with_rate(0.05);
        let (dirty, changed) = spread_noise(&r, &cfg, 42);
        let total_cells = (r.len() * r.arity()) as f64;
        let observed = changed.len() as f64 / total_cells;
        assert!(
            (observed - 0.05).abs() < 0.03,
            "observed noise rate {observed}"
        );
        assert_eq!(dirty.len(), r.len());
        // Changed cells are recorded with their original values.
        for cell in changed.iter().take(20) {
            assert_eq!(cell.original, r.value(cell.row, cell.col));
        }
    }

    #[test]
    fn spread_noise_is_deterministic_per_seed() {
        let r = relation(100);
        let cfg = NoiseConfig::with_rate(0.05);
        let (_, a) = spread_noise(&r, &cfg, 7);
        let (_, b) = spread_noise(&r, &cfg, 7);
        let (_, c) = spread_noise(&r, &cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let r = relation(50);
        let cfg = NoiseConfig::with_rate(0.0);
        let (dirty, changed) = spread_noise(&r, &cfg, 1);
        assert!(changed.is_empty());
        for row in 0..r.len() {
            for col in 0..r.arity() {
                assert!(dirty.value(row, col).sem_eq(&r.value(row, col)));
            }
        }
        let (_, changed_skewed) = skewed_noise(&r, &cfg, 1);
        assert!(changed_skewed.is_empty());
    }

    #[test]
    fn skewed_noise_touches_few_tuples_but_many_of_their_cells() {
        let r = relation(400);
        let cfg = NoiseConfig::with_rate(0.01);
        let (_, changed) = skewed_noise(&r, &cfg, 9);
        assert!(!changed.is_empty());
        let mut rows: Vec<usize> = changed.iter().map(|c| c.row).collect();
        rows.sort_unstable();
        rows.dedup();
        // ~1% of 400 tuples = ~4 tuples.
        assert!(rows.len() <= 8, "too many tuples touched: {}", rows.len());
        // Errors are concentrated: more changed cells than changed tuples.
        assert!(changed.len() >= rows.len());
    }

    #[test]
    fn skewed_noise_touches_at_least_one_tuple_for_positive_rate() {
        let r = relation(50);
        let cfg = NoiseConfig::with_rate(0.001);
        let (_, changed) = skewed_noise(&r, &cfg, 3);
        assert!(!changed.is_empty());
    }

    #[test]
    fn typo_preserves_type() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert!(matches!(typo(&Value::Int(42), &mut rng), Value::Int(_)));
            assert!(matches!(
                typo(&Value::Float(1.5), &mut rng),
                Value::Float(_)
            ));
            assert!(matches!(typo(&Value::from("NY"), &mut rng), Value::Str(_)));
            assert!(matches!(typo(&Value::Null, &mut rng), Value::Null));
        }
    }

    #[test]
    fn typo_usually_differs_from_original() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut differing = 0;
        for _ in 0..100 {
            if typo(&Value::from("Seattle"), &mut rng) != Value::from("Seattle") {
                differing += 1;
            }
        }
        assert!(differing > 80);
    }

    #[test]
    fn active_domain_values_come_from_the_column() {
        let r = relation(20);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = active_domain_value(r.column(0), &mut rng);
            assert!(v == Value::from("NY") || v == Value::from("WA"));
        }
    }
}
