//! Noise injection (Section 8.4 of the paper).
//!
//! The qualitative analysis dirties each dataset in two ways:
//!
//! * **Spread noise** — every *cell* is modified independently with
//!   probability `p` (0.001 in the paper); a modified cell takes, with equal
//!   probability, either a random value from the active domain of its column
//!   or a "typo" (a perturbed version of the original value).
//! * **Skewed (concentrated) noise** — only a `p` fraction of the *tuples*
//!   are touched, but the errors are concentrated inside those tuples.
//!
//! Two flavours of each injector exist:
//!
//! * the **uniform** injectors ([`spread_noise`], [`skewed_noise`]) scramble
//!   arbitrary cells — useful for generic robustness tests on relations
//!   without a declared structure;
//! * the **targeted** injectors ([`targeted_spread_noise`],
//!   [`targeted_skewed_noise`]) take a dataset's [`CorrelationSpec`] and only
//!   corrupt cells of *dependent* columns, replacing them with a different
//!   active-domain value and only when a partner row sharing the determinant
//!   exists — so every injected error is a violation of a declared
//!   dependency, i.e. a golden-DC violation (or of a structural FD implying
//!   one). This mirrors the paper's evaluation, where the injected errors
//!   are the ones the golden rules can catch.
//!
//! All injectors are deterministic given a seed and report which cells they
//! changed, so tests can verify the error budget precisely.

use crate::generator::{forbidden_op_holds, row_key, CorrelationSpec};
use adc_data::{Column, Relation, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Noise-injection parameters.
#[derive(Debug, Clone, Copy)]
pub struct NoiseConfig {
    /// Cell (spread) or tuple (skewed) modification probability.
    pub rate: f64,
    /// Probability that a modified cell receives an active-domain value
    /// (otherwise it receives a typo). The paper uses 0.5.
    pub active_domain_probability: f64,
    /// Probability that a cell inside a noisy tuple is modified (skewed noise
    /// only). Values close to 1 concentrate many errors in few tuples.
    pub cell_probability_within_tuple: f64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig {
            rate: 0.001,
            active_domain_probability: 0.5,
            cell_probability_within_tuple: 0.5,
        }
    }
}

impl NoiseConfig {
    /// A configuration with the given modification rate and paper defaults
    /// for everything else.
    pub fn with_rate(rate: f64) -> Self {
        NoiseConfig {
            rate,
            ..Default::default()
        }
    }
}

/// A record of one modified cell.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyCell {
    /// Row of the modified cell.
    pub row: usize,
    /// Column of the modified cell.
    pub col: usize,
    /// The value before modification.
    pub original: Value,
}

/// Apply *spread* noise: each cell is modified independently with probability
/// `config.rate`. Returns the dirty relation and the list of modified cells.
pub fn spread_noise(
    relation: &Relation,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    for row in 0..relation.len() {
        for col in 0..relation.arity() {
            if rng.gen_bool(config.rate.clamp(0.0, 1.0)) {
                corrupt_cell(
                    &mut dirty,
                    relation,
                    row,
                    col,
                    config,
                    &mut rng,
                    &mut changed,
                );
            }
        }
    }
    (dirty, changed)
}

/// Apply *skewed* (error-concentrated) noise: a `config.rate` fraction of the
/// tuples is selected (at least one when the rate is positive), and cells
/// inside those tuples are modified with probability
/// `config.cell_probability_within_tuple`.
pub fn skewed_noise(
    relation: &Relation,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    let n = relation.len();
    let mut num_tuples = (n as f64 * config.rate).round() as usize;
    if num_tuples == 0 && config.rate > 0.0 && n > 0 {
        num_tuples = 1;
    }
    let noisy_rows = adc_data::sample::sample_indices(n, num_tuples, rng.gen());
    for &row in &noisy_rows {
        let mut touched_any = false;
        for col in 0..relation.arity() {
            if rng.gen_bool(config.cell_probability_within_tuple.clamp(0.0, 1.0)) {
                corrupt_cell(
                    &mut dirty,
                    relation,
                    row,
                    col,
                    config,
                    &mut rng,
                    &mut changed,
                );
                touched_any = true;
            }
        }
        if !touched_any && relation.arity() > 0 {
            // Guarantee that every selected tuple is actually dirty.
            let col = rng.gen_range(0..relation.arity());
            corrupt_cell(
                &mut dirty,
                relation,
                row,
                col,
                config,
                &mut rng,
                &mut changed,
            );
        }
    }
    (dirty, changed)
}

fn corrupt_cell(
    dirty: &mut Relation,
    original: &Relation,
    row: usize,
    col: usize,
    config: &NoiseConfig,
    rng: &mut StdRng,
    changed: &mut Vec<NoisyCell>,
) {
    let old = original.value(row, col);
    let new = if rng.gen_bool(config.active_domain_probability.clamp(0.0, 1.0)) {
        active_domain_value(original.column(col), rng)
    } else {
        typo(&old, rng)
    };
    if dirty.set_value(row, col, new).is_ok() {
        changed.push(NoisyCell {
            row,
            col,
            original: old,
        });
    }
}

/// How a targeted corruption of one column produces a dependency violation.
#[derive(Debug, Clone)]
enum ViolationRecipe {
    /// The column is the dependent of an FD: replacing the cell with a
    /// *different* value violates the FD against any partner row sharing the
    /// determinant (eligibility tracks partner existence per row).
    Dependent,
    /// The column takes part in a forbidden single-tuple comparison
    /// `t.left op t.right`: replacing the cell with a value that *satisfies*
    /// the comparison against the row's other operand violates the rule on
    /// the row itself. `this_is_left` records which operand the column is.
    Forbidden {
        other: usize,
        op: &'static str,
        this_is_left: bool,
    },
}

/// One way to corrupt a column, with the rows it applies to.
struct RecipeEntry {
    recipe: ViolationRecipe,
    /// Rows where *this* recipe is guaranteed (FD case: a determinant
    /// partner exists) or attempted (forbidden case) to create a violation.
    eligible: Vec<bool>,
}

/// One corruptible column with every recipe that can violate it.
struct TargetColumn {
    col: usize,
    recipes: Vec<RecipeEntry>,
    /// Union of the per-recipe eligibilities (selection mask).
    any_eligible: Vec<bool>,
}

/// Eligibility index for targeted noise. Each column appears **once**,
/// however many rules mention it, so a cell is corrupted at most once per
/// pass and the `changed` list never carries duplicate `(row, col)`
/// entries; eligibility stays per *recipe*, so a recipe is only applied to
/// rows where it actually produces a violation.
struct TargetIndex {
    columns: Vec<TargetColumn>,
}

impl TargetIndex {
    fn build(relation: &Relation, spec: &CorrelationSpec) -> TargetIndex {
        let schema = relation.schema();
        let mut columns: Vec<TargetColumn> = Vec::new();
        let entry = |col: usize,
                     recipe: ViolationRecipe,
                     eligible: Vec<bool>,
                     columns: &mut Vec<TargetColumn>| {
            let new_entry = RecipeEntry {
                recipe,
                eligible: eligible.clone(),
            };
            if let Some(target) = columns.iter_mut().find(|t| t.col == col) {
                target.recipes.push(new_entry);
                for (e, new) in target.any_eligible.iter_mut().zip(eligible) {
                    *e |= new;
                }
            } else {
                columns.push(TargetColumn {
                    col,
                    recipes: vec![new_entry],
                    any_eligible: eligible,
                });
            }
        };
        for col in spec.dependent_columns(schema) {
            let mut eligible = vec![false; relation.len()];
            for (lhs, _) in spec.fds_into(schema, col) {
                let mut counts: HashMap<String, usize> = HashMap::new();
                let keys: Vec<String> = (0..relation.len())
                    .map(|row| {
                        let key = row_key(relation, row, &lhs);
                        *counts.entry(key.clone()).or_insert(0) += 1;
                        key
                    })
                    .collect();
                for (row, key) in keys.iter().enumerate() {
                    if counts[key] >= 2 {
                        eligible[row] = true;
                    }
                }
            }
            if eligible.iter().any(|&e| e) {
                entry(col, ViolationRecipe::Dependent, eligible, &mut columns);
            }
        }
        for rule in &spec.forbidden {
            let (Some(left), Some(right)) =
                (schema.index_of(rule.left), schema.index_of(rule.right))
            else {
                continue;
            };
            let all = vec![true; relation.len()];
            entry(
                left,
                ViolationRecipe::Forbidden {
                    other: right,
                    op: rule.op,
                    this_is_left: true,
                },
                all.clone(),
                &mut columns,
            );
            entry(
                right,
                ViolationRecipe::Forbidden {
                    other: left,
                    op: rule.op,
                    this_is_left: false,
                },
                all,
                &mut columns,
            );
        }
        TargetIndex { columns }
    }
}

/// Apply *spread* noise targeted at golden-DC violations: only cells of
/// columns the spec declares dependent are corrupted, each with a different
/// active-domain value, and only in rows where a partner row shares the
/// determinant of an FD into that column. The per-cell probability is scaled
/// by `arity / #target-columns` so the expected number of errors matches
/// [`spread_noise`] at the same `config.rate`.
pub fn targeted_spread_noise(
    relation: &Relation,
    spec: &CorrelationSpec,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    let index = TargetIndex::build(relation, spec);
    if index.columns.is_empty() {
        return (dirty, changed);
    }
    let cell_rate =
        (config.rate * relation.arity() as f64 / index.columns.len() as f64).clamp(0.0, 1.0);
    for row in 0..relation.len() {
        for target in &index.columns {
            if target.any_eligible[row] && rng.gen_bool(cell_rate) {
                corrupt_targeted_cell(&mut dirty, relation, row, target, &mut rng, &mut changed);
            }
        }
    }
    (dirty, changed)
}

/// Apply *skewed* (error-concentrated) noise targeted at golden-DC
/// violations: a `config.rate` fraction of the tuples is selected (at least
/// one when the rate is positive), and the eligible dependent cells inside
/// those tuples are corrupted with probability
/// `config.cell_probability_within_tuple` (at least one per selected tuple).
pub fn targeted_skewed_noise(
    relation: &Relation,
    spec: &CorrelationSpec,
    config: &NoiseConfig,
    seed: u64,
) -> (Relation, Vec<NoisyCell>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = relation.clone();
    let mut changed = Vec::new();
    let index = TargetIndex::build(relation, spec);
    if index.columns.is_empty() {
        return (dirty, changed);
    }
    let n = relation.len();
    let mut num_tuples = (n as f64 * config.rate).round() as usize;
    if num_tuples == 0 && config.rate > 0.0 && n > 0 {
        num_tuples = 1;
    }
    let noisy_rows = adc_data::sample::sample_indices(n, num_tuples, rng.gen());
    for &row in &noisy_rows {
        let eligible: Vec<&TargetColumn> = index
            .columns
            .iter()
            .filter(|t| t.any_eligible[row])
            .collect();
        if eligible.is_empty() {
            continue;
        }
        let mut touched_any = false;
        for target in &eligible {
            if rng.gen_bool(config.cell_probability_within_tuple.clamp(0.0, 1.0))
                && corrupt_targeted_cell(&mut dirty, relation, row, target, &mut rng, &mut changed)
            {
                touched_any = true;
            }
        }
        if !touched_any {
            // Guarantee that every selected tuple is actually dirty (modulo
            // a forbidden-recipe draw finding no violating value).
            let target = eligible[rng.gen_range(0..eligible.len())];
            corrupt_targeted_cell(&mut dirty, relation, row, target, &mut rng, &mut changed);
        }
    }
    (dirty, changed)
}

/// Replace a cell so the change violates a declared dependency; returns
/// whether a change was made.
///
/// * [`ViolationRecipe::Dependent`]: any *different* value works (preferably
///   another active-domain value; a typo when the column is near-constant) —
///   the determinant partner row then disagrees on the dependent.
/// * [`ViolationRecipe::Forbidden`]: the new value must make the forbidden
///   single-tuple comparison hold against the row's other operand; drawn
///   from the active domain, skipped if no drawn value qualifies.
fn corrupt_targeted_cell(
    dirty: &mut Relation,
    original: &Relation,
    row: usize,
    target: &TargetColumn,
    rng: &mut StdRng,
    changed: &mut Vec<NoisyCell>,
) -> bool {
    for entry in &target.recipes {
        // Only apply a recipe to rows where *it* creates a violation — a
        // column can be FD-dependent and a forbidden-rule operand at once,
        // and the FD recipe is only valid where a determinant partner
        // exists.
        if entry.eligible[row]
            && corrupt_with_recipe(
                dirty,
                original,
                row,
                target.col,
                &entry.recipe,
                rng,
                changed,
            )
        {
            return true;
        }
    }
    false
}

fn corrupt_with_recipe(
    dirty: &mut Relation,
    original: &Relation,
    row: usize,
    col: usize,
    recipe: &ViolationRecipe,
    rng: &mut StdRng,
    changed: &mut Vec<NoisyCell>,
) -> bool {
    // Among the qualifying active-domain draws, keep the numerically
    // *closest* to the original: the cell still breaks the dependency, but
    // the dirty value stays near the clean one (a neighbouring zip block, an
    // adjacent price level), so a few corrupted cells do not shatter the
    // relation's evidence structure the way far-off values would.
    let distance = |candidate: &Value, old: &Value| -> i64 {
        match (candidate.as_i64(), old.as_i64()) {
            (Some(a), Some(b)) => (a - b).abs(),
            _ => 0,
        }
    };
    let old = original.value(row, col);
    let mut new = Value::Null;
    let mut found = false;
    let mut best = i64::MAX;
    match recipe {
        ViolationRecipe::Dependent => {
            for _ in 0..32 {
                let candidate = active_domain_value(original.column(col), rng);
                if !candidate.sem_eq(&old) && candidate != Value::Null {
                    let d = distance(&candidate, &old);
                    if !found || d < best {
                        new = candidate;
                        best = d;
                        found = true;
                    }
                }
            }
            if !found {
                for _ in 0..8 {
                    let candidate = typo(&old, rng);
                    if !candidate.sem_eq(&old) {
                        new = candidate;
                        found = true;
                        break;
                    }
                }
            }
        }
        ViolationRecipe::Forbidden {
            other,
            op,
            this_is_left,
        } => {
            let Some(other_val) = original.value(row, *other).as_i64() else {
                return false;
            };
            for _ in 0..32 {
                let candidate = active_domain_value(original.column(col), rng);
                let Some(v) = candidate.as_i64() else {
                    continue;
                };
                let violates = if *this_is_left {
                    forbidden_op_holds(op, v, other_val)
                } else {
                    forbidden_op_holds(op, other_val, v)
                }
                .unwrap_or(false);
                if violates && !candidate.sem_eq(&old) {
                    let d = distance(&candidate, &old);
                    if !found || d < best {
                        new = candidate;
                        best = d;
                        found = true;
                    }
                }
            }
        }
    }
    if found && dirty.set_value(row, col, new).is_ok() {
        changed.push(NoisyCell {
            row,
            col,
            original: old,
        });
        return true;
    }
    false
}

/// Draw a random value from the active domain (the non-null values that
/// already appear in the column).
fn active_domain_value(column: &Column, rng: &mut StdRng) -> Value {
    let n = column.len();
    for _ in 0..16 {
        let row = rng.gen_range(0..n.max(1));
        if n > 0 && !column.is_null(row) {
            return column.value(row);
        }
    }
    Value::Null
}

/// Produce a "typo" version of a value: numeric values are perturbed by a
/// small relative amount, strings get one character substituted or appended.
fn typo(value: &Value, rng: &mut StdRng) -> Value {
    match value {
        Value::Int(i) => {
            let delta = rng.gen_range(1..=9) * 10i64.pow(rng.gen_range(0..3));
            Value::Int(if rng.gen_bool(0.5) {
                i + delta
            } else {
                i - delta
            })
        }
        Value::Float(f) => {
            let factor = 1.0 + rng.gen_range(-0.3..0.3);
            Value::Float(f * factor + 1.0)
        }
        Value::Str(s) => {
            let mut chars: Vec<char> = s.chars().collect();
            let replacement = (b'a' + rng.gen_range(0..26)) as char;
            if chars.is_empty() || rng.gen_bool(0.3) {
                chars.push(replacement);
            } else {
                let idx = rng.gen_range(0..chars.len());
                chars[idx] = replacement;
            }
            Value::Str(chars.into_iter().collect())
        }
        Value::Null => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adc_data::{AttributeType, Schema};

    fn relation(rows: usize) -> Relation {
        let schema = Schema::of(&[
            ("State", AttributeType::Text),
            ("Income", AttributeType::Integer),
            ("Rate", AttributeType::Float),
        ]);
        let mut b = Relation::builder(schema);
        for i in 0..rows {
            b.push_row(vec![
                Value::from(if i % 2 == 0 { "NY" } else { "WA" }),
                Value::Int(1_000 + i as i64),
                Value::Float(0.1 * (i % 7) as f64),
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn spread_noise_changes_roughly_rate_fraction_of_cells() {
        // The tolerance band is statistical, not tuned to the stand-in RNG's
        // stream: the observed rate over N = 1500 cells at p = 0.05 has
        // σ = √(p(1−p)/N) ≈ 0.0056, so ±0.03 is a > 5σ band — it holds for
        // any uniform RNG (ChaCha12 included), not just the vendored one.
        let r = relation(500);
        let cfg = NoiseConfig::with_rate(0.05);
        let (dirty, changed) = spread_noise(&r, &cfg, 42);
        let total_cells = (r.len() * r.arity()) as f64;
        let observed = changed.len() as f64 / total_cells;
        assert!(
            (observed - 0.05).abs() < 0.03,
            "observed noise rate {observed}"
        );
        assert_eq!(dirty.len(), r.len());
        // Changed cells are recorded with their original values.
        for cell in changed.iter().take(20) {
            assert_eq!(cell.original, r.value(cell.row, cell.col));
        }
    }

    #[test]
    fn spread_noise_is_deterministic_per_seed() {
        let r = relation(100);
        let cfg = NoiseConfig::with_rate(0.05);
        let (_, a) = spread_noise(&r, &cfg, 7);
        let (_, b) = spread_noise(&r, &cfg, 7);
        let (_, c) = spread_noise(&r, &cfg, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let r = relation(50);
        let cfg = NoiseConfig::with_rate(0.0);
        let (dirty, changed) = spread_noise(&r, &cfg, 1);
        assert!(changed.is_empty());
        for row in 0..r.len() {
            for col in 0..r.arity() {
                assert!(dirty.value(row, col).sem_eq(&r.value(row, col)));
            }
        }
        let (_, changed_skewed) = skewed_noise(&r, &cfg, 1);
        assert!(changed_skewed.is_empty());
    }

    #[test]
    fn skewed_noise_touches_few_tuples_but_many_of_their_cells() {
        let r = relation(400);
        let cfg = NoiseConfig::with_rate(0.01);
        let (_, changed) = skewed_noise(&r, &cfg, 9);
        assert!(!changed.is_empty());
        let mut rows: Vec<usize> = changed.iter().map(|c| c.row).collect();
        rows.sort_unstable();
        rows.dedup();
        // The injector selects exactly round(0.01 · 400) = 4 tuples by
        // construction (sample_indices draws without replacement), so the
        // bound is structural — it does not depend on the RNG stream.
        assert!(rows.len() <= 4, "too many tuples touched: {}", rows.len());
        // Errors are concentrated: more changed cells than changed tuples.
        assert!(changed.len() >= rows.len());
    }

    #[test]
    fn targeted_spread_noise_only_violates_declared_dependencies() {
        use crate::catalog::Dataset;
        // Stock exercises the forbidden-rule recipe (its FDs are key-based,
        // so only the price-sanity rules are corruptible); the others
        // exercise the FD-dependent recipe.
        for dataset in [
            Dataset::Tax,
            Dataset::Stock,
            Dataset::Hospital,
            Dataset::Flight,
        ] {
            let generator = dataset.generator();
            let spec = generator.correlation();
            let clean = generator.generate(240, 17);
            assert_eq!(spec.verify(&clean), Ok(()));
            let (dirty, changed) =
                targeted_spread_noise(&clean, &spec, &NoiseConfig::with_rate(0.004), 23);
            assert!(!changed.is_empty(), "{dataset}: no errors injected");
            // Every corrupted cell sits in a declared dependent column...
            let targets = spec.dependent_columns(clean.schema());
            for cell in &changed {
                assert!(
                    targets.contains(&cell.col),
                    "{dataset}: corrupted non-dependent column {}",
                    cell.col
                );
                assert!(!dirty.value(cell.row, cell.col).sem_eq(&cell.original));
            }
            // ...each cell at most once (the error budget is exact)...
            let mut cells: Vec<(usize, usize)> = changed.iter().map(|c| (c.row, c.col)).collect();
            cells.sort_unstable();
            let before = cells.len();
            cells.dedup();
            assert_eq!(before, cells.len(), "{dataset}: duplicate corrupted cells");
            // ...and the dirty relation violates the declared model.
            assert!(
                spec.verify(&dirty).is_err(),
                "{dataset}: injected errors are not dependency violations"
            );
        }
    }

    #[test]
    fn targeted_skewed_noise_concentrates_violations_in_few_tuples() {
        use crate::catalog::Dataset;
        let generator = Dataset::Voter.generator();
        let spec = generator.correlation();
        let clean = generator.generate(300, 3);
        let (dirty, changed) =
            targeted_skewed_noise(&clean, &spec, &NoiseConfig::with_rate(0.01), 5);
        assert!(!changed.is_empty());
        let mut rows: Vec<usize> = changed.iter().map(|c| c.row).collect();
        rows.sort_unstable();
        rows.dedup();
        assert!(rows.len() <= 3, "too many tuples touched: {}", rows.len());
        assert!(spec.verify(&dirty).is_err());
    }

    #[test]
    fn targeted_noise_without_dependencies_is_a_no_op() {
        let r = relation(40);
        let spec = CorrelationSpec::default();
        let (dirty, changed) = targeted_spread_noise(&r, &spec, &NoiseConfig::with_rate(0.5), 1);
        assert!(changed.is_empty());
        assert_eq!(dirty.len(), r.len());
        let (_, changed) = targeted_skewed_noise(&r, &spec, &NoiseConfig::with_rate(0.5), 1);
        assert!(changed.is_empty());
    }

    #[test]
    fn skewed_noise_touches_at_least_one_tuple_for_positive_rate() {
        let r = relation(50);
        let cfg = NoiseConfig::with_rate(0.001);
        let (_, changed) = skewed_noise(&r, &cfg, 3);
        assert!(!changed.is_empty());
    }

    #[test]
    fn typo_preserves_type() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert!(matches!(typo(&Value::Int(42), &mut rng), Value::Int(_)));
            assert!(matches!(
                typo(&Value::Float(1.5), &mut rng),
                Value::Float(_)
            ));
            assert!(matches!(typo(&Value::from("NY"), &mut rng), Value::Str(_)));
            assert!(matches!(typo(&Value::Null, &mut rng), Value::Null));
        }
    }

    #[test]
    fn typo_usually_differs_from_original() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut differing = 0;
        for _ in 0..100 {
            if typo(&Value::from("Seattle"), &mut rng) != Value::from("Seattle") {
                differing += 1;
            }
        }
        assert!(differing > 80);
    }

    #[test]
    fn active_domain_values_come_from_the_column() {
        let r = relation(20);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let v = active_domain_value(r.column(0), &mut rng);
            assert!(v == Value::from("NY") || v == Value::from("WA"));
        }
    }
}
