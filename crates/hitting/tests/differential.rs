//! Property-based differential tests for the hitting-set enumerators, in the
//! spirit of black-box cross-implementation checking: on random set systems,
//! the brute-force reference, MMCS (under every branch strategy), and the
//! approximate enumerator at ε = 0 must all enumerate exactly the same
//! family, and every returned set must be a *minimal* hitting set.
//!
//! Case count is controlled by `PROPTEST_CASES` (default 256); CI runs the
//! suite with a raised count.

use adc_data::FixedBitSet;
use adc_hitting::brute::{
    brute_force_minimal_approx_hitting_sets, brute_force_minimal_hitting_sets,
};
use adc_hitting::{
    approx_minimal_hitting_sets, enumerate_minimal_hitting_sets, ApproxEnumConfig, BranchStrategy,
    SetSystem,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a set system over `3 + universe_seed % 8` elements from raw index
/// lists (indices are folded into the universe, so every subset is non-empty
/// and in range).
fn build_system(universe_seed: usize, raw_subsets: &[Vec<usize>]) -> SetSystem {
    let num_elements = 3 + universe_seed % 8;
    let subsets: Vec<&[usize]> = raw_subsets.iter().map(|s| s.as_slice()).collect();
    let folded: Vec<Vec<usize>> = subsets
        .iter()
        .map(|s| s.iter().map(|&e| e % num_elements).collect())
        .collect();
    let folded_refs: Vec<&[usize]> = folded.iter().map(|s| s.as_slice()).collect();
    SetSystem::from_indices(num_elements, &folded_refs)
}

/// Collect MMCS results for a strategy.
fn mmcs(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    enumerate_minimal_hitting_sets(system, strategy, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// The exact-cover score used to drive the approximate enumerator at ε = 0:
/// the fraction of subsets hit (monotone, 1 exactly on hitting sets).
fn coverage_score(system: &SetSystem) -> impl Fn(&FixedBitSet) -> f64 + '_ {
    move |set: &FixedBitSet| {
        if system.is_empty() {
            return 1.0;
        }
        system
            .subsets()
            .iter()
            .filter(|s| s.intersects(set))
            .count() as f64
            / system.len() as f64
    }
}

/// Normalise a family for comparison.
fn canon(mut sets: Vec<FixedBitSet>) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = sets.drain(..).map(|s| s.to_vec()).collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn brute_mmcs_and_approx_agree_on_random_systems(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        let reference = canon(brute_force_minimal_hitting_sets(&system));

        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let found = canon(mmcs(&system, strategy));
            prop_assert_eq!(
                &found, &reference,
                "MMCS/{:?} diverged from brute force", strategy
            );

            let config = ApproxEnumConfig::new(0.0).with_strategy(strategy);
            let approx = canon(approx_minimal_hitting_sets(
                &system,
                coverage_score(&system),
                &config,
            ));
            prop_assert_eq!(
                &approx, &reference,
                "approx(ε=0)/{:?} diverged from brute force", strategy
            );
        }
    }

    #[test]
    fn every_enumerated_set_is_a_minimal_cover(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        for set in mmcs(&system, BranchStrategy::MaxIntersection) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "MMCS emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
        let config = ApproxEnumConfig::new(0.0);
        for set in approx_minimal_hitting_sets(&system, coverage_score(&system), &config) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "approx(ε=0) emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
    }

    #[test]
    fn approx_brute_force_agrees_at_positive_epsilon(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..500,
    ) {
        // At ε > 0 the approximate enumerator must match the brute-force
        // approximate reference (same score, same threshold). ε is kept off
        // exact coverage-fraction boundaries by a +1/2000 offset so
        // floating-point comparisons at the boundary cannot flip.
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        let reference = canon(brute_force_minimal_approx_hitting_sets(
            system.num_elements(),
            &score,
            epsilon,
        ));
        let config = ApproxEnumConfig::new(epsilon);
        let found = canon(approx_minimal_hitting_sets(&system, &score, &config));
        prop_assert_eq!(found, reference);
    }
}
