//! Property-based differential tests for the hitting-set enumerators, in the
//! spirit of black-box cross-implementation checking: on random set systems,
//! the brute-force reference, MMCS (under every branch strategy), and the
//! approximate enumerator at ε = 0 must all enumerate exactly the same
//! family, and every returned set must be a *minimal* hitting set. The
//! frontier orders of the shared search engine are differentials too:
//! `ShortestFirst` and `Dfs` must emit identical cover sets, and the
//! `ShortestFirst` emission sequence must be nondecreasing in cover size.
//!
//! Case count is controlled by `PROPTEST_CASES` (default 256); CI runs the
//! suite with a raised count.

use adc_data::FixedBitSet;
use adc_hitting::brute::{
    brute_force_minimal_approx_hitting_sets, brute_force_minimal_hitting_sets,
};
use adc_hitting::{
    approx_minimal_hitting_sets, enumerate_minimal_hitting_sets, patch_approx_search,
    patch_minimal_hitting_search, repair_covers, resume_approx_minimal_hitting_sets,
    resume_minimal_hitting_sets, search_approx_minimal_hitting_sets_resumable,
    search_minimal_hitting_sets, search_minimal_hitting_sets_resumable, shrink_covers,
    ApproxEnumConfig, BranchStrategy, SearchBudget, SearchOrder, SetSystem,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a set system over `3 + universe_seed % 8` elements from raw index
/// lists (indices are folded into the universe, so every subset is non-empty
/// and in range).
fn build_system(universe_seed: usize, raw_subsets: &[Vec<usize>]) -> SetSystem {
    let num_elements = 3 + universe_seed % 8;
    let subsets: Vec<&[usize]> = raw_subsets.iter().map(|s| s.as_slice()).collect();
    let folded: Vec<Vec<usize>> = subsets
        .iter()
        .map(|s| s.iter().map(|&e| e % num_elements).collect())
        .collect();
    let folded_refs: Vec<&[usize]> = folded.iter().map(|s| s.as_slice()).collect();
    SetSystem::from_indices(num_elements, &folded_refs)
}

/// Collect MMCS results for a strategy.
fn mmcs(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    enumerate_minimal_hitting_sets(system, strategy, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// Collect exact MMCS results under the shortest-first frontier, asserting
/// the run reports itself exhaustive.
fn mmcs_shortest_first(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    let outcome = search_minimal_hitting_sets(
        system,
        strategy,
        SearchOrder::ShortestFirst,
        SearchBudget::unlimited(),
        &mut |s: &FixedBitSet| {
            out.push(s.clone());
            true
        },
    );
    assert!(outcome.is_exhaustive());
    out
}

/// Assert an emission sequence is nondecreasing in cover size.
fn assert_nondecreasing_sizes(sets: &[FixedBitSet], context: &str) {
    for window in sets.windows(2) {
        assert!(
            window[0].len() <= window[1].len(),
            "{context}: cover of size {} emitted after size {}",
            window[1].len(),
            window[0].len()
        );
    }
}

/// The exact-cover score used to drive the approximate enumerator at ε = 0:
/// the fraction of subsets hit (monotone, 1 exactly on hitting sets).
fn coverage_score(system: &SetSystem) -> impl Fn(&FixedBitSet) -> f64 + '_ {
    move |set: &FixedBitSet| {
        if system.is_empty() {
            return 1.0;
        }
        system
            .subsets()
            .iter()
            .filter(|s| s.intersects(set))
            .count() as f64
            / system.len() as f64
    }
}

/// Normalise a family for comparison.
fn canon(mut sets: Vec<FixedBitSet>) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = sets.drain(..).map(|s| s.to_vec()).collect();
    v.sort();
    v
}

/// Collect the exact enumeration as a sequence of node-budget slices,
/// resuming from the suspend token until exhaustion. Returns the
/// concatenated emission sequence and the number of slices run.
fn mmcs_sliced(
    system: &SetSystem,
    strategy: BranchStrategy,
    order: SearchOrder,
    slice_budget: SearchBudget,
) -> (Vec<Vec<usize>>, usize) {
    let mut covers: Vec<Vec<usize>> = Vec::new();
    let (_, mut suspended) = search_minimal_hitting_sets_resumable(
        system,
        strategy,
        order,
        slice_budget,
        &mut |s: &FixedBitSet| {
            covers.push(s.to_vec());
            true
        },
    );
    let mut slices = 1;
    while let Some(token) = suspended.take() {
        slices += 1;
        assert!(slices < 100_000, "runaway resume loop");
        let (_, next) =
            resume_minimal_hitting_sets(system, slice_budget, token, &mut |s: &FixedBitSet| {
                covers.push(s.to_vec());
                true
            });
        suspended = next;
    }
    (covers, slices)
}

/// Same slicing harness for the approximate enumerator.
fn approx_sliced(
    system: &SetSystem,
    score: impl Fn(&FixedBitSet) -> f64,
    config: &ApproxEnumConfig<'_>,
) -> (Vec<Vec<usize>>, usize) {
    let mut covers: Vec<Vec<usize>> = Vec::new();
    let (_, _, mut suspended) =
        search_approx_minimal_hitting_sets_resumable(system, &score, config, &mut |s| {
            covers.push(s.to_vec());
            true
        });
    let mut slices = 1;
    while let Some(token) = suspended.take() {
        slices += 1;
        assert!(slices < 100_000, "runaway resume loop");
        let (_, _, next) =
            resume_approx_minimal_hitting_sets(system, &score, config, token, &mut |s| {
                covers.push(s.to_vec());
                true
            });
        suspended = next;
    }
    (covers, slices)
}

proptest! {
    #[test]
    fn brute_mmcs_and_approx_agree_on_random_systems(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        let reference = canon(brute_force_minimal_hitting_sets(&system));

        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let found = canon(mmcs(&system, strategy));
            prop_assert_eq!(
                &found, &reference,
                "MMCS/{:?} diverged from brute force", strategy
            );

            let config = ApproxEnumConfig::new(0.0).with_strategy(strategy);
            let approx = canon(approx_minimal_hitting_sets(
                &system,
                coverage_score(&system),
                &config,
            ));
            prop_assert_eq!(
                &approx, &reference,
                "approx(ε=0)/{:?} diverged from brute force", strategy
            );
        }
    }

    #[test]
    fn every_enumerated_set_is_a_minimal_cover(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        for set in mmcs(&system, BranchStrategy::MaxIntersection) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "MMCS emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
        let config = ApproxEnumConfig::new(0.0);
        for set in approx_minimal_hitting_sets(&system, coverage_score(&system), &config) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "approx(ε=0) emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
    }

    #[test]
    fn shortest_first_and_dfs_agree_and_shortest_first_is_sorted(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            // Exact enumeration: both orders emit identical cover *sets*,
            // and shortest-first emission is nondecreasing in cover size.
            let dfs = mmcs(&system, strategy);
            let sf = mmcs_shortest_first(&system, strategy);
            assert_nondecreasing_sizes(&sf, &format!("exact/{strategy:?}"));
            prop_assert_eq!(
                canon(dfs), canon(sf),
                "exact ShortestFirst/{:?} changed the cover set", strategy
            );
        }
    }

    #[test]
    fn approx_shortest_first_agrees_with_dfs_at_any_epsilon(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..500,
    ) {
        // The same differential for the approximate enumerator, at ε = 0 and
        // at the (boundary-offset) positive ε, under every strategy.
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        for eps in [0.0, epsilon] {
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
                BranchStrategy::First,
            ] {
                let dfs_cfg = ApproxEnumConfig::new(eps).with_strategy(strategy);
                let sf_cfg = dfs_cfg.clone().with_order(SearchOrder::ShortestFirst);
                let dfs = approx_minimal_hitting_sets(&system, &score, &dfs_cfg);
                let sf = approx_minimal_hitting_sets(&system, &score, &sf_cfg);
                assert_nondecreasing_sizes(&sf, &format!("approx ε={eps}/{strategy:?}"));
                prop_assert_eq!(
                    canon(dfs), canon(sf),
                    "approx(ε={}) ShortestFirst/{:?} changed the cover set", eps, strategy
                );
            }
        }
    }

    #[test]
    fn budget_cut_exact_runs_resume_to_the_uncapped_sequence(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
        node_slice in 1u64..12,
        emit_slice in 1usize..4,
    ) {
        // Cut at arbitrary points (node budget, emission budget), resume to
        // completion: the concatenated emission must equal the single
        // uncapped run's *sequence* (not just its set), for both orders.
        let system = build_system(universe_seed, &raw_subsets);
        for order in [SearchOrder::Dfs, SearchOrder::ShortestFirst] {
            let mut reference: Vec<Vec<usize>> = Vec::new();
            let outcome = search_minimal_hitting_sets(
                &system,
                BranchStrategy::MaxIntersection,
                order,
                SearchBudget::unlimited(),
                &mut |s: &FixedBitSet| {
                    reference.push(s.to_vec());
                    true
                },
            );
            prop_assert!(outcome.is_exhaustive());

            let (by_nodes, _) = mmcs_sliced(
                &system,
                BranchStrategy::MaxIntersection,
                order,
                SearchBudget::unlimited().with_max_nodes(node_slice),
            );
            prop_assert_eq!(&by_nodes, &reference, "node-sliced {:?}", order);

            let (by_emitted, _) = mmcs_sliced(
                &system,
                BranchStrategy::MaxIntersection,
                order,
                SearchBudget::unlimited().with_max_emitted(emit_slice),
            );
            prop_assert_eq!(&by_emitted, &reference, "emission-sliced {:?}", order);
        }
    }

    #[test]
    fn budget_cut_approx_runs_resume_to_the_uncapped_sequence(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..400,
        node_slice in 1u64..12,
    ) {
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        for eps in [0.0, epsilon] {
            for order in [SearchOrder::Dfs, SearchOrder::ShortestFirst] {
                let uncapped_cfg = ApproxEnumConfig::new(eps).with_order(order);
                let mut reference: Vec<Vec<usize>> = Vec::new();
                let (_, outcome, token) = search_approx_minimal_hitting_sets_resumable(
                    &system,
                    &score,
                    &uncapped_cfg,
                    &mut |s| {
                        reference.push(s.to_vec());
                        true
                    },
                );
                prop_assert!(outcome.is_exhaustive());
                prop_assert!(token.is_none());

                let sliced_cfg = uncapped_cfg
                    .clone()
                    .with_budget(SearchBudget::unlimited().with_max_nodes(node_slice));
                let (covers, _) = approx_sliced(&system, &score, &sliced_cfg);
                prop_assert_eq!(&covers, &reference, "ε={} {:?}", eps, order);
            }
        }
    }

    #[test]
    fn memory_bounded_shortest_first_resumes_and_keeps_the_answer_set(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
        cap in 1usize..8,
        node_slice in 1u64..12,
    ) {
        // The frontier cap perturbs only the emission *order*: the answer
        // set must match the unbounded run, and a cut memory-bounded run
        // resumed to completion must replay the single memory-bounded run's
        // sequence exactly.
        let system = build_system(universe_seed, &raw_subsets);
        let unbounded = canon(mmcs(&system, BranchStrategy::MaxIntersection));

        let bounded_budget = SearchBudget::unlimited().with_max_frontier_nodes(cap);
        let mut bounded: Vec<Vec<usize>> = Vec::new();
        let outcome = search_minimal_hitting_sets(
            &system,
            BranchStrategy::MaxIntersection,
            SearchOrder::ShortestFirst,
            bounded_budget,
            &mut |s: &FixedBitSet| {
                bounded.push(s.to_vec());
                true
            },
        );
        prop_assert!(outcome.is_exhaustive());
        let mut bounded_set = bounded.clone();
        bounded_set.sort();
        prop_assert_eq!(&bounded_set, &unbounded, "the cap changed the answer set");

        let (sliced, _) = mmcs_sliced(
            &system,
            BranchStrategy::MaxIntersection,
            SearchOrder::ShortestFirst,
            bounded_budget.with_max_nodes(node_slice),
        );
        prop_assert_eq!(&sliced, &bounded, "memory-bounded cut+resume diverged");
    }

    #[test]
    fn inplace_dfs_walk_matches_the_explicit_engine_sequence(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        // Unbudgeted exact DFS takes the in-place undo walk; any budget
        // forces the explicit snapshot frontier. Same tree, same order —
        // the emission sequences must be identical.
        let system = build_system(universe_seed, &raw_subsets);
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let mut inplace: Vec<Vec<usize>> = Vec::new();
            search_minimal_hitting_sets(
                &system,
                strategy,
                SearchOrder::Dfs,
                SearchBudget::unlimited(),
                &mut |s: &FixedBitSet| {
                    inplace.push(s.to_vec());
                    true
                },
            );
            let mut explicit: Vec<Vec<usize>> = Vec::new();
            search_minimal_hitting_sets(
                &system,
                strategy,
                SearchOrder::Dfs,
                SearchBudget::unlimited().with_max_nodes(u64::MAX),
                &mut |s: &FixedBitSet| {
                    explicit.push(s.to_vec());
                    true
                },
            );
            prop_assert_eq!(&inplace, &explicit, "strategy {:?}", strategy);
        }
    }

    #[test]
    fn approx_brute_force_agrees_at_positive_epsilon(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..500,
    ) {
        // At ε > 0 the approximate enumerator must match the brute-force
        // approximate reference (same score, same threshold). ε is kept off
        // exact coverage-fraction boundaries by a +1/2000 offset so
        // floating-point comparisons at the boundary cannot flip.
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        let reference = canon(brute_force_minimal_approx_hitting_sets(
            system.num_elements(),
            &score,
            epsilon,
        ));
        let config = ApproxEnumConfig::new(epsilon);
        let found = canon(approx_minimal_hitting_sets(&system, &score, &config));
        prop_assert_eq!(found, reference);
    }
}

// ---------------------------------------------------------------------------
// Differential repair: grown systems (appended subsets)
// ---------------------------------------------------------------------------

/// Fold raw index lists into `num_elements` and append them to a clone of
/// `system`, returning the grown system and the append start index.
fn grow_system(system: &SetSystem, raw_appended: &[Vec<usize>]) -> (SetSystem, usize) {
    let m = system.num_elements();
    let mut grown = system.clone();
    let appended_from = grown.len();
    for raw in raw_appended {
        let folded: Vec<usize> = raw.iter().map(|&e| e % m).collect();
        grown.push_subset(FixedBitSet::from_indices(m, folded.iter().copied()));
    }
    (grown, appended_from)
}

proptest! {
    #[test]
    fn repair_of_a_complete_answer_equals_full_reenumeration(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 0..8),
        raw_appended in vec(vec(0usize..16, 1..5), 1..5),
    ) {
        // The tentpole guarantee of `repair_covers`: starting from the
        // complete T(F), grafting per-cover repairs of the appended subsets
        // reproduces T(F ∪ A) exactly — for any appended batch.
        let system = build_system(universe_seed, &raw_subsets);
        let (grown, appended_from) = grow_system(&system, &raw_appended);
        let old_covers = mmcs(&system, BranchStrategy::MaxIntersection);
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let (repaired, stats) =
                repair_covers(&old_covers, &grown, appended_from..grown.len(), strategy);
            let reference = canon(brute_force_minimal_hitting_sets(&grown));
            prop_assert_eq!(
                canon(repaired),
                reference,
                "repair/{:?} diverged from re-enumeration",
                strategy
            );
            prop_assert_eq!(stats.kept + stats.reopened, old_covers.len());
        }
    }

    #[test]
    fn shrink_covers_is_sound_on_shrunk_systems(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 2..8),
        keep in 1usize..8,
    ) {
        // Drop a suffix of the subsets and greedily re-minimise the old
        // answer: every output must be a genuine minimal hitting set of the
        // shrunk system and appear in its full answer. (Completeness is
        // impossible from old covers alone — see `adc_hitting::repair`.)
        let system = build_system(universe_seed, &raw_subsets);
        let keep = keep.min(system.len());
        let shrunk_sys = SetSystem::new(
            system.num_elements(),
            system.subsets()[..keep].to_vec(),
        );
        let old_covers = mmcs(&system, BranchStrategy::MaxIntersection);
        let shrunk = shrink_covers(&old_covers, &shrunk_sys);
        let full: std::collections::HashSet<Vec<usize>> =
            canon(brute_force_minimal_hitting_sets(&shrunk_sys))
                .into_iter()
                .collect();
        for s in &shrunk {
            prop_assert!(
                shrunk_sys.is_minimal_hitting_set(s),
                "shrink emitted a non-minimal cover {:?}",
                s.to_vec()
            );
            prop_assert!(full.contains(&s.to_vec()));
        }
    }

    #[test]
    fn patched_exact_frontier_resumes_soundly(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
        raw_appended in vec(vec(0usize..16, 1..5), 1..4),
        budget_nodes in 1u64..24,
    ) {
        // Cut an exact shortest-first run mid-flight, append subsets, patch
        // the frontier, and resume against the grown system. Soundness: every
        // post-patch emission is a minimal hitting set of the grown system
        // (and hence appears in its full answer), and no cover — pre- or
        // post-patch — is ever emitted twice.
        let system = build_system(universe_seed, &raw_subsets);
        let mut covers: Vec<FixedBitSet> = Vec::new();
        let (_, suspended) = search_minimal_hitting_sets_resumable(
            &system,
            BranchStrategy::MaxIntersection,
            SearchOrder::ShortestFirst,
            SearchBudget::unlimited().with_max_nodes(budget_nodes),
            &mut |s: &FixedBitSet| {
                covers.push(s.clone());
                true
            },
        );
        let Some(mut token) = suspended else { continue };
        let pre_patch = covers.len();
        let (grown, appended_from) = grow_system(&system, &raw_appended);
        patch_minimal_hitting_search(&mut token, &grown, appended_from);
        let mut next = Some(token);
        while let Some(t) = next.take() {
            let (_, again) = resume_minimal_hitting_sets(
                &grown,
                SearchBudget::unlimited(),
                t,
                &mut |s: &FixedBitSet| {
                    covers.push(s.clone());
                    true
                },
            );
            next = again;
        }
        let full: std::collections::HashSet<Vec<usize>> =
            canon(brute_force_minimal_hitting_sets(&grown))
                .into_iter()
                .collect();
        for s in &covers[pre_patch..] {
            prop_assert!(
                grown.is_minimal_hitting_set(s),
                "patched resume emitted a non-minimal cover {:?}",
                s.to_vec()
            );
            prop_assert!(full.contains(&s.to_vec()));
        }
        let mut seen = std::collections::HashSet::new();
        for s in &covers {
            prop_assert!(seen.insert(s.to_vec()), "duplicate emission {:?}", s.to_vec());
        }
    }

    #[test]
    fn patched_approx_frontier_resumes_soundly_at_epsilon_zero(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        raw_appended in vec(vec(0usize..16, 1..5), 1..4),
        budget_nodes in 1u64..24,
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        let config = ApproxEnumConfig::new(0.0)
            .with_order(SearchOrder::ShortestFirst)
            .with_budget(SearchBudget::unlimited().with_max_nodes(budget_nodes));
        let mut covers: Vec<FixedBitSet> = Vec::new();
        let (_, _, suspended) = search_approx_minimal_hitting_sets_resumable(
            &system,
            coverage_score(&system),
            &config,
            &mut |s| {
                covers.push(s.clone());
                true
            },
        );
        let Some(mut token) = suspended else { continue };
        let pre_patch = covers.len();
        let (grown, appended_from) = grow_system(&system, &raw_appended);
        // ε > 0 must refuse to patch; ε = 0 must succeed.
        let mut reject_probe = token.clone();
        prop_assert_eq!(
            patch_approx_search(
                &mut reject_probe,
                &grown,
                &ApproxEnumConfig::new(0.25),
                appended_from
            ),
            None
        );
        prop_assert!(
            patch_approx_search(&mut token, &grown, &config, appended_from).is_some()
        );
        let resume_config = ApproxEnumConfig::new(0.0).with_order(SearchOrder::ShortestFirst);
        let mut next = Some(token);
        while let Some(t) = next.take() {
            let (_, _, again) = resume_approx_minimal_hitting_sets(
                &grown,
                coverage_score(&grown),
                &resume_config,
                t,
                &mut |s| {
                    covers.push(s.clone());
                    true
                },
            );
            next = again;
        }
        for s in &covers[pre_patch..] {
            prop_assert!(
                grown.is_minimal_hitting_set(s),
                "patched approx resume emitted a non-minimal cover {:?}",
                s.to_vec()
            );
        }
    }
}
