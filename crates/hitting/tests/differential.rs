//! Property-based differential tests for the hitting-set enumerators, in the
//! spirit of black-box cross-implementation checking: on random set systems,
//! the brute-force reference, MMCS (under every branch strategy), and the
//! approximate enumerator at ε = 0 must all enumerate exactly the same
//! family, and every returned set must be a *minimal* hitting set. The
//! frontier orders of the shared search engine are differentials too:
//! `ShortestFirst` and `Dfs` must emit identical cover sets, and the
//! `ShortestFirst` emission sequence must be nondecreasing in cover size.
//!
//! Case count is controlled by `PROPTEST_CASES` (default 256); CI runs the
//! suite with a raised count.

use adc_data::FixedBitSet;
use adc_hitting::brute::{
    brute_force_minimal_approx_hitting_sets, brute_force_minimal_hitting_sets,
};
use adc_hitting::{
    approx_minimal_hitting_sets, enumerate_minimal_hitting_sets, search_minimal_hitting_sets,
    ApproxEnumConfig, BranchStrategy, SearchBudget, SearchOrder, SetSystem,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Build a set system over `3 + universe_seed % 8` elements from raw index
/// lists (indices are folded into the universe, so every subset is non-empty
/// and in range).
fn build_system(universe_seed: usize, raw_subsets: &[Vec<usize>]) -> SetSystem {
    let num_elements = 3 + universe_seed % 8;
    let subsets: Vec<&[usize]> = raw_subsets.iter().map(|s| s.as_slice()).collect();
    let folded: Vec<Vec<usize>> = subsets
        .iter()
        .map(|s| s.iter().map(|&e| e % num_elements).collect())
        .collect();
    let folded_refs: Vec<&[usize]> = folded.iter().map(|s| s.as_slice()).collect();
    SetSystem::from_indices(num_elements, &folded_refs)
}

/// Collect MMCS results for a strategy.
fn mmcs(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    enumerate_minimal_hitting_sets(system, strategy, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// Collect exact MMCS results under the shortest-first frontier, asserting
/// the run reports itself exhaustive.
fn mmcs_shortest_first(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    let outcome = search_minimal_hitting_sets(
        system,
        strategy,
        SearchOrder::ShortestFirst,
        SearchBudget::unlimited(),
        &mut |s: &FixedBitSet| {
            out.push(s.clone());
            true
        },
    );
    assert!(outcome.is_exhaustive());
    out
}

/// Assert an emission sequence is nondecreasing in cover size.
fn assert_nondecreasing_sizes(sets: &[FixedBitSet], context: &str) {
    for window in sets.windows(2) {
        assert!(
            window[0].len() <= window[1].len(),
            "{context}: cover of size {} emitted after size {}",
            window[1].len(),
            window[0].len()
        );
    }
}

/// The exact-cover score used to drive the approximate enumerator at ε = 0:
/// the fraction of subsets hit (monotone, 1 exactly on hitting sets).
fn coverage_score(system: &SetSystem) -> impl Fn(&FixedBitSet) -> f64 + '_ {
    move |set: &FixedBitSet| {
        if system.is_empty() {
            return 1.0;
        }
        system
            .subsets()
            .iter()
            .filter(|s| s.intersects(set))
            .count() as f64
            / system.len() as f64
    }
}

/// Normalise a family for comparison.
fn canon(mut sets: Vec<FixedBitSet>) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = sets.drain(..).map(|s| s.to_vec()).collect();
    v.sort();
    v
}

proptest! {
    #[test]
    fn brute_mmcs_and_approx_agree_on_random_systems(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        let reference = canon(brute_force_minimal_hitting_sets(&system));

        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let found = canon(mmcs(&system, strategy));
            prop_assert_eq!(
                &found, &reference,
                "MMCS/{:?} diverged from brute force", strategy
            );

            let config = ApproxEnumConfig::new(0.0).with_strategy(strategy);
            let approx = canon(approx_minimal_hitting_sets(
                &system,
                coverage_score(&system),
                &config,
            ));
            prop_assert_eq!(
                &approx, &reference,
                "approx(ε=0)/{:?} diverged from brute force", strategy
            );
        }
    }

    #[test]
    fn every_enumerated_set_is_a_minimal_cover(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        for set in mmcs(&system, BranchStrategy::MaxIntersection) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "MMCS emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
        let config = ApproxEnumConfig::new(0.0);
        for set in approx_minimal_hitting_sets(&system, coverage_score(&system), &config) {
            prop_assert!(
                system.is_minimal_hitting_set(&set),
                "approx(ε=0) emitted a non-minimal cover {:?}", set.to_vec()
            );
        }
    }

    #[test]
    fn shortest_first_and_dfs_agree_and_shortest_first_is_sorted(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..10),
    ) {
        let system = build_system(universe_seed, &raw_subsets);
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            // Exact enumeration: both orders emit identical cover *sets*,
            // and shortest-first emission is nondecreasing in cover size.
            let dfs = mmcs(&system, strategy);
            let sf = mmcs_shortest_first(&system, strategy);
            assert_nondecreasing_sizes(&sf, &format!("exact/{strategy:?}"));
            prop_assert_eq!(
                canon(dfs), canon(sf),
                "exact ShortestFirst/{:?} changed the cover set", strategy
            );
        }
    }

    #[test]
    fn approx_shortest_first_agrees_with_dfs_at_any_epsilon(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..500,
    ) {
        // The same differential for the approximate enumerator, at ε = 0 and
        // at the (boundary-offset) positive ε, under every strategy.
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        for eps in [0.0, epsilon] {
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
                BranchStrategy::First,
            ] {
                let dfs_cfg = ApproxEnumConfig::new(eps).with_strategy(strategy);
                let sf_cfg = dfs_cfg.clone().with_order(SearchOrder::ShortestFirst);
                let dfs = approx_minimal_hitting_sets(&system, &score, &dfs_cfg);
                let sf = approx_minimal_hitting_sets(&system, &score, &sf_cfg);
                assert_nondecreasing_sizes(&sf, &format!("approx ε={eps}/{strategy:?}"));
                prop_assert_eq!(
                    canon(dfs), canon(sf),
                    "approx(ε={}) ShortestFirst/{:?} changed the cover set", eps, strategy
                );
            }
        }
    }

    #[test]
    fn approx_brute_force_agrees_at_positive_epsilon(
        universe_seed in 0usize..1_000,
        raw_subsets in vec(vec(0usize..16, 1..5), 1..8),
        epsilon_mil in 0usize..500,
    ) {
        // At ε > 0 the approximate enumerator must match the brute-force
        // approximate reference (same score, same threshold). ε is kept off
        // exact coverage-fraction boundaries by a +1/2000 offset so
        // floating-point comparisons at the boundary cannot flip.
        let epsilon = epsilon_mil as f64 / 1_000.0 + 0.000_5;
        let system = build_system(universe_seed, &raw_subsets);
        let score = coverage_score(&system);
        let reference = canon(brute_force_minimal_approx_hitting_sets(
            system.num_elements(),
            &score,
            epsilon,
        ));
        let config = ApproxEnumConfig::new(epsilon);
        let found = canon(approx_minimal_hitting_sets(&system, &score, &config));
        prop_assert_eq!(found, reference);
    }
}
