//! The shared tree-search engine behind every hitting-set enumerator.
//!
//! Both the exact MMCS enumeration ([`crate::mmcs`]) and the approximate
//! `ADCEnum` core ([`crate::approx`]) explore the same search tree: a node is
//! a partial solution `S` together with the bookkeeping MMCS maintains —
//! `cand` (elements still allowed into `S`), `uncov` (subsets not yet hit),
//! and `crit` (per element of `S`, the subsets it alone hits — the minimality
//! invariant). The two algorithms differ only in *local* decisions: when a
//! node is terminal, whether a non-hitting branch exists, and how candidate
//! lists are thinned. This module owns the tree walk; the algorithms supply
//! those decisions through [`SearchDriver`].
//!
//! The walk is an **explicit frontier**, not recursion, which buys four
//! things the recursive implementations could not offer:
//!
//! * **Pluggable order** ([`SearchOrder`]): a LIFO stack reproduces the
//!   classic depth-first traversal; [`SearchOrder::ShortestFirst`] is a
//!   best-first priority queue keyed by `|S|` plus an admissible lower bound
//!   on the elements still needed ([`greedy_disjoint_lower_bound`]), which
//!   guarantees covers are emitted in nondecreasing size — so any output cap
//!   keeps the entire shortest frontier instead of an arbitrary DFS prefix.
//! * **Anytime budgets** ([`SearchBudget`]): node, wall-clock, and emission
//!   limits checked at every step, with a [`SearchOutcome`] reporting whether
//!   the run was exhaustive and, under shortest-first, up to which cover size
//!   the emitted frontier is provably complete.
//! * **Suspend / resume** ([`SuspendedSearch`]): a budget-cut run hands back
//!   its live frontier as an opaque token; [`resume_search`] continues the
//!   traversal exactly where it stopped, and a cut-then-resumed run emits
//!   **the same cover sequence** as a single uncapped run.
//! * **Bounded memory** ([`SearchBudget::max_frontier_nodes`]): when the
//!   best-first frontier outgrows the cap, the deepest tail of the heap is
//!   spilled to a DFS lane and expanded in place, so the frontier never
//!   holds more than ~1.5× the cap while the nondecreasing-size emission
//!   guarantee degrades gracefully (the [`Truncation::complete_below`] bound
//!   stays honest throughout).
//!
//! One escape hatch remains from the recursion era: an **in-place undo walk**
//! ([`SearchDriver::supports_inplace_dfs`]) used for unbudgeted depth-first
//! exact enumeration, where per-child node snapshots would only cost — it
//! visits the identical tree in the identical order while mutating a single
//! node's state with O(1) undo instead of cloning it per child.

#![doc = "conformance: ordered-output"]

use crate::{BranchStrategy, SetSystem};
use adc_data::fx::FxHashMap;
use adc_data::FixedBitSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The order in which frontier nodes are expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchOrder {
    /// Classic depth-first traversal (a LIFO stack): children are explored in
    /// the order the recursive algorithms visit them. Cheapest per node, but
    /// emission order is arbitrary, so truncated runs keep an arbitrary
    /// prefix of the answer set.
    #[default]
    Dfs,
    /// Best-first traversal keyed by `|S| +` an admissible lower bound on the
    /// elements still needed. Covers are emitted in nondecreasing size, and
    /// ties are broken by insertion order, so truncated runs keep exactly the
    /// shortest part of the minimal frontier, deterministically.
    ShortestFirst,
}

/// Resource limits for one search run (one *slice*, when resuming). The
/// default is unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    /// Stop after expanding this many nodes.
    pub max_nodes: Option<u64>,
    /// Stop once this much wall-clock time has elapsed since the search
    /// started (checked before each node expansion *and* periodically inside
    /// wide expansions, so a single huge subset-selection loop cannot
    /// overshoot the deadline unboundedly).
    pub deadline: Option<Duration>,
    /// Stop after emitting this many results.
    pub max_emitted: Option<usize>,
    /// Memory bound: maximum number of nodes the best-first frontier may
    /// hold. Exceeding it triggers a *contraction* — the deepest (largest
    /// key) half of the heap is spilled to a DFS lane and expanded in place
    /// before best-first popping resumes — so total held nodes stay within
    /// ~1.5× this cap plus transient DFS depth. Contractions trade the
    /// global nondecreasing-size emission guarantee for bounded memory;
    /// [`Truncation::complete_below`] remains a correct bound either way,
    /// and [`SearchOutcome::contractions`] reports how often it happened.
    /// Ignored under [`SearchOrder::Dfs`], whose stack is inherently bounded
    /// by tree depth × branching.
    pub max_frontier_nodes: Option<usize>,
}

impl SearchBudget {
    /// No limits (same as `Default`).
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Limit the number of expanded nodes.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Limit the wall-clock time, measured from the start of the search.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limit the number of emitted results.
    pub fn with_max_emitted(mut self, max_emitted: usize) -> Self {
        self.max_emitted = Some(max_emitted);
        self
    }

    /// Bound the number of nodes the best-first frontier may hold (see
    /// [`SearchBudget::max_frontier_nodes`] for the contraction policy).
    pub fn with_max_frontier_nodes(mut self, max_frontier_nodes: usize) -> Self {
        self.max_frontier_nodes = Some(max_frontier_nodes);
        self
    }

    /// `true` when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none()
            && self.deadline.is_none()
            && self.max_emitted.is_none()
            && self.max_frontier_nodes.is_none()
    }
}

/// Why a search stopped before exhausting its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// [`SearchBudget::max_nodes`] was reached.
    MaxNodes,
    /// [`SearchBudget::deadline`] passed.
    Deadline,
    /// [`SearchBudget::max_emitted`] was reached.
    MaxEmitted,
    /// The caller's callback returned `false`.
    Callback,
}

/// Description of a truncated (non-exhaustive) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// What cut the search short.
    pub reason: TruncationReason,
    /// Under [`SearchOrder::ShortestFirst`]: every cover of size *strictly
    /// below* this was emitted before the cut — the frontier is complete up
    /// to (but excluding) this size. The bound is the minimum admissible key
    /// over **every** pending node (heap, DFS spill lane, and any expansion
    /// aborted mid-flight), so it stays correct even after memory-bound
    /// contractions have perturbed the emission order. `None` under
    /// [`SearchOrder::Dfs`], where frontier priorities carry no admissible
    /// completeness information and no such guarantee exists.
    pub complete_below: Option<usize>,
}

/// What one search run (slice) did and whether it finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Number of results handed to the callback *by this run*. When
    /// resuming, the per-slice counters add up across slices;
    /// [`SuspendedSearch::total_emitted`] carries the running total.
    pub emitted: usize,
    /// Number of frontier nodes expanded by this run (the explicit-stack
    /// equivalent of the recursive call count).
    pub nodes_expanded: u64,
    /// `None` when the frontier was exhausted — the enumeration is complete.
    /// `Some` when a budget or the callback cut the run short.
    pub truncation: Option<Truncation>,
    /// High-water mark of simultaneously held frontier nodes (heap + spill
    /// lane + any in-flight node). Under the in-place undo walk, where
    /// pending siblings are implicit, this reports the maximum walk depth
    /// instead.
    pub peak_frontier: usize,
    /// Number of memory-bound frontier contractions performed by this run
    /// (always 0 unless [`SearchBudget::max_frontier_nodes`] is set). Any
    /// non-zero value means the nondecreasing-size emission guarantee of
    /// [`SearchOrder::ShortestFirst`] was locally relaxed to stay within
    /// the memory bound.
    pub contractions: u64,
}

impl SearchOutcome {
    /// `true` when the whole search space was explored.
    pub fn is_exhaustive(&self) -> bool {
        self.truncation.is_none()
    }
}

/// Compact storage for a node's `uncov` and `crit` lists: one shared `u32`
/// buffer addressed by region bounds, instead of one heap allocation per
/// list. Region 0 is `uncov`; region `i + 1` is `crit[i]`. The whole thing
/// sits behind an `Rc` so children that keep the lists unchanged (the
/// non-hitting branch) share them for free — this is what makes wide
/// frontiers cheap enough to hold and suspend.
#[derive(Debug)]
struct NodeLists {
    buf: Box<[u32]>,
    /// `bounds[i]..bounds[i + 1]` delimits region `i`.
    bounds: Box<[u32]>,
}

impl NodeLists {
    fn root(num_subsets: usize) -> Self {
        NodeLists {
            buf: (0..num_subsets as u32).collect(),
            bounds: vec![0, num_subsets as u32].into_boxed_slice(),
        }
    }

    fn region(&self, i: usize) -> &[u32] {
        &self.buf[self.bounds[i] as usize..self.bounds[i + 1] as usize]
    }

    /// Number of criticality regions (equals `|S|`).
    fn crit_regions(&self) -> usize {
        self.bounds.len() - 2
    }
}

/// A frontier node: a partial solution plus the MMCS bookkeeping needed to
/// expand it independently of every other node.
#[derive(Debug, Clone)]
pub struct SearchNode {
    /// Elements of the partial solution, in insertion order.
    s: Vec<usize>,
    /// The partial solution as a bitset.
    s_set: FixedBitSet,
    /// Elements still allowed into the solution.
    cand: FixedBitSet,
    /// `uncov` (subsets not yet hit, stable ascending order) and `crit[i]`
    /// (subsets for which `s[i]` is the only hitter; every region non-empty —
    /// the MMCS minimality invariant), interned in one compact buffer.
    lists: Rc<NodeLists>,
    /// Subsets still reachable by some candidate (only thinned by drivers
    /// that take the non-hitting branch; shared untouched otherwise).
    can_hit: Rc<FixedBitSet>,
}

impl SearchNode {
    /// Root node whose candidate set is confined to `allowed` (when given):
    /// the search then visits exactly the solutions contained in `allowed` —
    /// elements outside it can never enter a partial solution, and an
    /// uncovered subset none of whose elements are allowed kills the branch
    /// through the ordinary unhittable check.
    fn root_within(system: &SetSystem, allowed: Option<&FixedBitSet>) -> Self {
        let m = system.num_elements();
        SearchNode {
            s: Vec::new(),
            s_set: FixedBitSet::new(m),
            cand: allowed.cloned().unwrap_or_else(|| FixedBitSet::full(m)),
            lists: Rc::new(NodeLists::root(system.len())),
            can_hit: Rc::new(FixedBitSet::full(system.len())),
        }
    }

    /// The partial solution as a bitset.
    pub fn solution(&self) -> &FixedBitSet {
        &self.s_set
    }

    /// The partial solution's elements in insertion order.
    pub fn elements(&self) -> &[usize] {
        &self.s
    }

    /// Candidate elements still allowed into the solution.
    pub fn cand(&self) -> &FixedBitSet {
        &self.cand
    }

    /// Indexes of the subsets not yet hit by the partial solution, in stable
    /// ascending order.
    pub fn uncov(&self) -> &[u32] {
        self.lists.region(0)
    }

    /// `crit[i]`: the subsets for which `s[i]` is the only hitter.
    fn crit(&self, i: usize) -> &[u32] {
        self.lists.region(i + 1)
    }
}

/// What the engine should do with a freshly popped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDisposition {
    /// Terminal: hand the solution to the callback; do not expand.
    Emit,
    /// Terminal: neither emit nor expand (e.g. threshold met but not minimal).
    Discard,
    /// Interior: expand by branching on an uncovered subset.
    Expand,
}

/// The algorithm-specific decisions plugged into [`run_search`].
///
/// The engine owns node expansion (candidate thinning, the criticality /
/// minimality invariant, subset selection, frontier discipline, budgets);
/// the driver decides when a node is terminal and which optional rules —
/// non-hitting branch, redundant-group suppression, lower bounds — apply.
pub trait SearchDriver {
    /// Classify a popped node: emit, discard, or expand.
    fn classify(&mut self, system: &SetSystem, node: &SearchNode) -> NodeDisposition;

    /// Whether expansion also produces the branch that does *not* hit the
    /// chosen subset (`ADCEnum`'s second branch). Defaults to `false` (exact
    /// MMCS: every hitting set must hit every subset).
    fn wants_skip_branch(&self) -> bool {
        false
    }

    /// Given the reduced candidate list of the non-hitting branch, decide
    /// whether that branch is worth exploring (the `WillCover` pruning).
    /// Only called when [`Self::wants_skip_branch`] is `true`.
    fn explore_skip_branch(
        &mut self,
        _system: &SetSystem,
        _solution: &FixedBitSet,
        _cand: &FixedBitSet,
    ) -> bool {
        true
    }

    /// Structure group of an element, if redundant-group suppression applies:
    /// when an element enters the solution, the rest of its group leaves the
    /// candidate list for that branch.
    fn group_of(&self, _element: usize) -> Option<usize> {
        None
    }

    /// Admissible lower bound on how many more elements any solution emitted
    /// below `node` must add. Used by [`SearchOrder::ShortestFirst`] to order
    /// the frontier; must never overestimate. Defaults to 0 (always safe).
    fn lower_bound(&mut self, _system: &SetSystem, _node: &SearchNode) -> usize {
        0
    }

    /// Whether an uncovered subset that no candidate can hit makes the whole
    /// branch hopeless. `true` for exact enumeration (the subset can never be
    /// hit); `false` for approximate enumeration, where such subsets are
    /// tracked as unhittable and simply never branched on again.
    fn unhittable_is_fatal(&self) -> bool {
        true
    }

    /// Opt-in for the in-place undo walk used on unbudgeted DFS runs. A
    /// driver may return `true` only when its [`Self::classify`] is exactly
    /// the exact-MMCS rule — emit iff `uncov` is empty, expand otherwise —
    /// and [`Self::wants_skip_branch`] is `false`; the fast path inlines that
    /// classification instead of materialising nodes. Defaults to `false`.
    fn supports_inplace_dfs(&self) -> bool {
        false
    }
}

/// Engine configuration: branching strategy, frontier order, budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchConfig {
    /// How the next uncovered subset to hit is selected.
    pub strategy: BranchStrategy,
    /// Frontier discipline.
    pub order: SearchOrder,
    /// Resource limits.
    pub budget: SearchBudget,
}

/// Which lane of the frontier a node came from / its children go to.
///
/// `Best` is the configured discipline (heap or DFS stack); `Spill` is the
/// DFS lane holding memory-bound contraction victims, whose whole subtrees
/// are expanded depth-first in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lane {
    Best,
    Spill,
}

/// The live state of a budget-cut search: the entire pending frontier plus
/// the cumulative emission/node counters. Obtained from
/// [`run_search_resumable`] when a [`SearchBudget`] (or the callback) cuts a
/// run short, and handed to [`resume_search`] to continue the traversal.
///
/// Resuming with the same system, driver configuration, order, and strategy
/// continues the *identical* deterministic traversal: the concatenation of
/// the cover sequences emitted by the slices equals the sequence a single
/// uncapped run emits. The token is self-describing (it records order and
/// strategy and validates them on resume) but deliberately opaque otherwise.
#[derive(Debug, Clone)]
pub struct SuspendedSearch {
    order: SearchOrder,
    strategy: BranchStrategy,
    /// Best-lane entries: heap content as `(node, priority, seq)` (sorted by
    /// key for determinism of the stored form), or the DFS stack bottom→top
    /// with `seq = 0`.
    entries: Vec<FrontierEntry>,
    /// The DFS spill lane, bottom→top (always empty under [`SearchOrder::Dfs`]).
    spill: Vec<SpillEntry>,
    /// A node that was popped but whose expansion was aborted mid-flight by
    /// the deadline; it is re-expanded (from scratch, deterministically)
    /// before the frontier is popped again.
    pending: Option<(SearchNode, usize, bool)>,
    next_seq: u64,
    total_nodes_expanded: u64,
    total_emitted: usize,
    total_contractions: u64,
}

impl SuspendedSearch {
    /// The frontier order the suspended run was using.
    pub fn order(&self) -> SearchOrder {
        self.order
    }

    /// The branch strategy the suspended run was using.
    pub fn strategy(&self) -> BranchStrategy {
        self.strategy
    }

    /// Number of pending frontier nodes held by the token.
    pub fn frontier_len(&self) -> usize {
        self.entries.len() + self.spill.len() + usize::from(self.pending.is_some())
    }

    /// Results emitted so far across every slice of this search.
    pub fn total_emitted(&self) -> usize {
        self.total_emitted
    }

    /// Nodes expanded so far across every slice of this search.
    pub fn total_nodes_expanded(&self) -> u64 {
        self.total_nodes_expanded
    }

    /// Memory-bound frontier contractions performed so far across every
    /// slice of this search.
    pub fn total_contractions(&self) -> u64 {
        self.total_contractions
    }

    /// Patch the suspended frontier in place after subsets were appended to
    /// the system (indexes `appended_from..system.len()`; existing subset
    /// indexes must be unchanged — see [`SetSystem::push_subset`]).
    ///
    /// Every pending node classifies each appended subset against its
    /// partial solution `S`: a subset `S` misses joins the node's `uncov`
    /// list, a subset hit by exactly one `s ∈ S` joins `s`'s criticality
    /// list, and a subset hit twice or more needs no bookkeeping. Appended
    /// indexes are larger than every existing one, so appending them keeps
    /// each list's stable ascending order, and node priorities stay
    /// admissible under [`SearchOrder::ShortestFirst`] (new subsets only
    /// increase the elements a branch still needs). Returns the number of
    /// pending nodes that gained at least one uncovered subset.
    ///
    /// Resuming the patched token is **sound**: every emission still passes
    /// the driver's classification against the grown system. It is **not
    /// complete** relative to a from-scratch run of the grown system —
    /// branches the original run pruned (criticality or candidate-discipline
    /// prunes justified by the *old* subsets only) are not re-opened, and
    /// covers emitted *before* the patch are not revisited. Callers wanting
    /// the exact grown answer must repair the emitted prefix separately
    /// ([`crate::repair::repair_covers`], which requires the previous run to
    /// have been exhaustive) or restart.
    ///
    /// # Panics
    /// Panics if `appended_from > system.len()` or the token's element
    /// universe does not match `system`'s.
    pub fn patch(&mut self, system: &SetSystem, appended_from: usize) -> usize {
        assert!(
            appended_from <= system.len(),
            "patch: appended_from {appended_from} exceeds the {}-subset system",
            system.len()
        );
        let sample = self
            .entries
            .first()
            .map(|(n, _, _)| n)
            .or_else(|| self.spill.first().map(|(n, _)| n))
            .or_else(|| self.pending.as_ref().map(|(n, _, _)| n));
        if let Some(node) = sample {
            assert_eq!(
                node.cand.capacity(),
                system.num_elements(),
                "patch: the token was produced over a different element universe"
            );
        }
        if appended_from == system.len() {
            return 0;
        }
        let appended: Vec<u32> = (appended_from..system.len()).map(|i| i as u32).collect();
        // Nodes share `lists` only along skip-branch chains, which keep the
        // partial solution unchanged — so every sharer classifies the
        // appended subsets identically and the patched lists can be shared
        // again. `can_hit` carries no per-solution state at all. Caching by
        // the old Rc pointer preserves both sharing structures.
        let mut lists_cache: FxHashMap<usize, (Rc<NodeLists>, bool)> = FxHashMap::default();
        let mut can_hit_cache: FxHashMap<usize, Rc<FixedBitSet>> = FxHashMap::default();
        let mut reopened = 0usize;
        let num_subsets = system.len();

        let mut patch_node = |node: &mut SearchNode| {
            let can_hit_key = Rc::as_ptr(&node.can_hit) as usize;
            let patched_can_hit = can_hit_cache
                .entry(can_hit_key)
                .or_insert_with(|| {
                    let mut grown = FixedBitSet::new(num_subsets);
                    for fi in node.can_hit.iter() {
                        grown.insert(fi);
                    }
                    for &fi in &appended {
                        grown.insert(fi as usize);
                    }
                    Rc::new(grown)
                })
                .clone();
            node.can_hit = patched_can_hit;

            let lists_key = Rc::as_ptr(&node.lists) as usize;
            let (patched_lists, gained_uncov) = lists_cache
                .entry(lists_key)
                .or_insert_with(|| {
                    let mut extra_uncov: Vec<u32> = Vec::new();
                    let mut extra_crit: Vec<Vec<u32>> = vec![Vec::new(); node.lists.crit_regions()];
                    for &fi in &appended {
                        let subset = &system.subsets()[fi as usize];
                        match subset.intersection_count(&node.s_set) {
                            0 => extra_uncov.push(fi),
                            1 => {
                                let i = node
                                    .s
                                    .iter()
                                    .position(|&e| subset.contains(e))
                                    // conformance: allow(panic) — intersection_count == 1 guarantees exactly one such element exists
                                    .expect("intersection element must be in the solution");
                                extra_crit[i].push(fi);
                            }
                            _ => {}
                        }
                    }
                    let gained = !extra_uncov.is_empty();
                    if !gained && extra_crit.iter().all(|c| c.is_empty()) {
                        (Rc::clone(&node.lists), false)
                    } else {
                        let old = &node.lists;
                        let extra_total: usize =
                            extra_uncov.len() + extra_crit.iter().map(|c| c.len()).sum::<usize>();
                        let mut buf = Vec::with_capacity(old.buf.len() + extra_total);
                        let mut bounds = Vec::with_capacity(old.bounds.len());
                        bounds.push(0u32);
                        buf.extend_from_slice(old.region(0));
                        buf.extend_from_slice(&extra_uncov);
                        bounds.push(buf.len() as u32);
                        for (i, extra) in extra_crit.iter().enumerate() {
                            buf.extend_from_slice(old.region(i + 1));
                            buf.extend_from_slice(extra);
                            bounds.push(buf.len() as u32);
                        }
                        (
                            Rc::new(NodeLists {
                                buf: buf.into_boxed_slice(),
                                bounds: bounds.into_boxed_slice(),
                            }),
                            gained,
                        )
                    }
                })
                .clone();
            node.lists = patched_lists;
            if gained_uncov {
                reopened += 1;
            }
        };

        for (node, _, _) in &mut self.entries {
            patch_node(node);
        }
        for (node, _) in &mut self.spill {
            patch_node(node);
        }
        if let Some((node, _, _)) = &mut self.pending {
            patch_node(node);
        }
        reopened
    }
}

/// Wall-clock deadline shared by the main loop and the expansion internals.
struct DeadlineGuard {
    start: Instant,
    limit: Duration,
}

impl DeadlineGuard {
    fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }
}

/// Run the search over `system` with the given driver and configuration,
/// invoking `callback` once per emitted solution. The callback may return
/// `false` to stop the search early.
///
/// Any suspended state is discarded; use [`run_search_resumable`] when a
/// budget-cut run should be continuable.
pub fn run_search<D, F>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    callback: &mut F,
) -> SearchOutcome
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    run_search_resumable(system, driver, config, callback).0
}

/// Like [`run_search`], but a budget- or callback-cut run also returns a
/// [`SuspendedSearch`] token that [`resume_search`] can continue from. The
/// token is `Some` exactly when [`SearchOutcome::truncation`] is `Some`,
/// with one exception: the in-place undo walk (unbudgeted exact DFS) does
/// not materialise a frontier, so a callback stop there yields no token.
pub fn run_search_resumable<D, F>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    callback: &mut F,
) -> (SearchOutcome, Option<SuspendedSearch>)
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    if config.order == SearchOrder::Dfs
        && config.budget.is_unlimited()
        && !driver.wants_skip_branch()
        && driver.supports_inplace_dfs()
    {
        return (
            run_dfs_inplace(system, driver, config.strategy, None, callback),
            None,
        );
    }
    drive(system, driver, config, None, None, callback)
}

/// Like [`run_search`], but with the root's candidate set restricted to
/// `allowed`: the run enumerates exactly the solutions **contained in**
/// `allowed`. Restricting the root candidates is equivalent to running the
/// unrestricted search on the system whose subsets are intersected with
/// `allowed` — for the exact driver that means exactly the minimal hitting
/// sets `τ ⊆ allowed` (a set `τ ⊆ allowed` hits `S` iff it hits
/// `S ∩ allowed`, and minimality among subsets of `allowed` coincides with
/// global minimality because every proper subset of a subset of `allowed` is
/// itself a subset of `allowed`).
///
/// This is the local-enumeration primitive behind
/// [`crate::repair::repair_covers_removal`], where `allowed` is a removed
/// subset's complement.
///
/// # Panics
/// Panics if `allowed` is not over the system's element universe.
pub fn run_search_within<D, F>(
    system: &SetSystem,
    driver: &mut D,
    allowed: &FixedBitSet,
    config: &SearchConfig,
    callback: &mut F,
) -> SearchOutcome
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    assert_eq!(
        allowed.capacity(),
        system.num_elements(),
        "run_search_within: the restriction must be over the system's element universe"
    );
    if config.order == SearchOrder::Dfs
        && config.budget.is_unlimited()
        && !driver.wants_skip_branch()
        && driver.supports_inplace_dfs()
    {
        return run_dfs_inplace(system, driver, config.strategy, Some(allowed), callback);
    }
    drive(system, driver, config, None, Some(allowed), callback).0
}

/// Continue a search suspended by an earlier budget cut.
///
/// `config.budget` applies to this slice alone (each slice gets its own
/// limits); `config.order` and `config.strategy` must match the original
/// run's, and the driver must be configured identically — the resumed
/// traversal is then byte-identical to the uncut one.
///
/// # Panics
/// Panics when the order or strategy differs from the suspended run's, or
/// when the token does not belong to `system` (element-universe mismatch).
pub fn resume_search<D, F>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    suspended: SuspendedSearch,
    callback: &mut F,
) -> (SearchOutcome, Option<SuspendedSearch>)
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    assert_eq!(
        config.order, suspended.order,
        "resume_search: the frontier order must match the suspended run's"
    );
    assert_eq!(
        config.strategy, suspended.strategy,
        "resume_search: the branch strategy must match the suspended run's"
    );
    let sample = suspended
        .entries
        .first()
        .map(|(n, _, _)| n)
        .or_else(|| suspended.spill.first().map(|(n, _)| n))
        .or_else(|| suspended.pending.as_ref().map(|(n, _, _)| n));
    if let Some(node) = sample {
        assert_eq!(
            node.cand.capacity(),
            system.num_elements(),
            "resume_search: the token was produced over a different set system"
        );
    }
    drive(system, driver, config, Some(suspended), None, callback)
}

/// The explicit-frontier engine shared by fresh and resumed runs.
/// `restrict` confines the root's candidate set (fresh runs only; a resumed
/// frontier already carries its restriction in every node's `cand`).
fn drive<D, F>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    resume: Option<SuspendedSearch>,
    restrict: Option<&FixedBitSet>,
    callback: &mut F,
) -> (SearchOutcome, Option<SuspendedSearch>)
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    let guard = config.budget.deadline.map(|limit| DeadlineGuard {
        start: Instant::now(),
        limit,
    });

    let (mut frontier, mut pending, prior_nodes, prior_emitted, prior_contractions) = match resume {
        Some(token) => {
            let SuspendedSearch {
                entries,
                spill,
                pending,
                next_seq,
                total_nodes_expanded,
                total_emitted,
                total_contractions,
                ..
            } = token;
            let frontier = Frontier::restore(config, entries, spill, next_seq);
            let pending = pending.map(|(node, priority, spilled)| {
                (
                    node,
                    priority,
                    if spilled { Lane::Spill } else { Lane::Best },
                )
            });
            (
                frontier,
                pending,
                total_nodes_expanded,
                total_emitted,
                total_contractions,
            )
        }
        None => {
            let mut frontier = Frontier::new(config);
            let root = SearchNode::root_within(system, restrict);
            let root_priority = match config.order {
                SearchOrder::Dfs => 0,
                SearchOrder::ShortestFirst => driver.lower_bound(system, &root),
            };
            frontier.push_best(root, root_priority);
            (frontier, None, 0, 0, 0)
        }
    };

    let mut nodes_expanded: u64 = 0;
    let mut emitted: usize = 0;
    let mut stop: Option<TruncationReason> = None;
    let mut peak = frontier.len() + usize::from(pending.is_some());

    loop {
        if let Some(max) = config.budget.max_nodes {
            if nodes_expanded >= max {
                stop = Some(TruncationReason::MaxNodes);
                break;
            }
        }
        if let Some(guard) = &guard {
            if guard.expired() {
                stop = Some(TruncationReason::Deadline);
                break;
            }
        }
        let Some((node, priority, lane)) = pending.take().or_else(|| frontier.pop()) else {
            break;
        };
        nodes_expanded += 1;
        match driver.classify(system, &node) {
            NodeDisposition::Emit => {
                emitted += 1;
                if !callback(&node.s_set) {
                    stop = Some(TruncationReason::Callback);
                    break;
                }
                if let Some(max) = config.budget.max_emitted {
                    if emitted >= max {
                        stop = Some(TruncationReason::MaxEmitted);
                        break;
                    }
                }
            }
            NodeDisposition::Discard => {}
            NodeDisposition::Expand => {
                match expand(
                    system,
                    driver,
                    config,
                    &node,
                    priority,
                    lane,
                    guard.as_ref(),
                    &mut frontier,
                ) {
                    ExpandOutcome::Done => peak = peak.max(frontier.len()),
                    ExpandOutcome::DeadlineAborted => {
                        // Nothing was pushed: undo the node count and park
                        // the in-flight node so the resumed slice re-expands
                        // it from scratch, deterministically.
                        nodes_expanded -= 1;
                        pending = Some((node, priority, lane));
                        stop = Some(TruncationReason::Deadline);
                        break;
                    }
                }
            }
        }
    }

    let contractions = frontier.contractions();
    let has_pending_work = pending.is_some() || !frontier.is_empty();
    let truncation = match stop {
        Some(reason) if has_pending_work => Some(Truncation {
            reason,
            complete_below: match config.order {
                SearchOrder::Dfs => None,
                SearchOrder::ShortestFirst => {
                    let frontier_min = frontier.min_priority();
                    let pending_min = pending.as_ref().map(|(_, p, _)| *p);
                    match (frontier_min, pending_min) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (Some(a), None) => Some(a),
                        (None, b) => b,
                    }
                }
            },
        }),
        // The frontier drained on the same step the cut fired: the
        // enumeration is in fact complete, so report it as exhaustive.
        _ => None,
    };

    let suspended = truncation.map(|_| {
        let (entries, spill, next_seq) = frontier.into_parts();
        SuspendedSearch {
            order: config.order,
            strategy: config.strategy,
            entries,
            spill,
            pending: pending.map(|(node, priority, lane)| (node, priority, lane == Lane::Spill)),
            next_seq,
            total_nodes_expanded: prior_nodes + nodes_expanded,
            total_emitted: prior_emitted + emitted,
            total_contractions: prior_contractions + contractions,
        }
    });

    (
        SearchOutcome {
            emitted,
            nodes_expanded,
            truncation,
            peak_frontier: peak,
            contractions,
        },
        suspended,
    )
}

enum ExpandOutcome {
    /// Children generated and pushed.
    Done,
    /// The deadline fired mid-expansion; nothing was pushed.
    DeadlineAborted,
}

/// Expand one interior node: pick the subset to branch on, generate the
/// optional non-hitting child and one child per admissible hitting element
/// (enforcing the criticality invariant), and push them onto the frontier —
/// the spill lane when the node came from it, the configured discipline
/// otherwise. The deadline guard is consulted periodically so a wide
/// expansion aborts (atomically — no partial children) instead of
/// overshooting the budget.
#[allow(clippy::too_many_arguments)]
fn expand<D: SearchDriver>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    node: &SearchNode,
    node_priority: usize,
    lane: Lane,
    guard: Option<&DeadlineGuard>,
    frontier: &mut Frontier,
) -> ExpandOutcome {
    let chosen = match choose_branch_subset(
        system,
        node.uncov(),
        &node.cand,
        &node.can_hit,
        config.strategy,
        driver.unhittable_is_fatal(),
        guard,
    ) {
        Ok(Some(fi)) => fi,
        Ok(None) => return ExpandOutcome::Done,
        Err(DeadlineHit) => return ExpandOutcome::DeadlineAborted,
    };
    let subset = &system.subsets()[chosen as usize];

    // Children are generated in the order the recursive algorithms visit
    // them: the non-hitting branch first, then each hitting element in
    // ascending order. The frontier restores that order for DFS.
    let mut children: Vec<SearchNode> = Vec::new();

    if driver.wants_skip_branch() {
        // Branch that does NOT hit the chosen subset: every element of the
        // subset leaves the candidate list, and any uncovered subset left
        // without candidates is marked unhittable (`UpdateCanCover`).
        let mut skip_cand = node.cand.clone();
        skip_cand.difference_with(subset);
        let mut skip_can_hit = node.can_hit.as_ref().clone();
        for &fi in node.uncov() {
            if skip_can_hit.contains(fi as usize)
                && !system.subsets()[fi as usize].intersects(&skip_cand)
            {
                skip_can_hit.remove(fi as usize);
            }
        }
        if driver.explore_skip_branch(system, &node.s_set, &skip_cand) {
            children.push(SearchNode {
                s: node.s.clone(),
                s_set: node.s_set.clone(),
                cand: skip_cand,
                // The partial solution is unchanged, so uncov and every
                // criticality list are too: share them.
                lists: Rc::clone(&node.lists),
                can_hit: Rc::new(skip_can_hit),
            });
        }
    }

    // Hitting children. `base_cand` reproduces the sequential candidate
    // discipline of MMCS: all of `C = cand ∩ F` leaves the pool first, and an
    // element re-enters it for *later* siblings only after passing the
    // criticality test (a non-critical element can never become critical for
    // a superset of S).
    let c: Vec<usize> = node.cand.intersection(subset).to_vec();
    let mut base_cand = node.cand.clone();
    for &e in &c {
        base_cand.remove(e);
    }
    // Scratch buffers reused across children; the surviving child copies
    // them into one exact-size interned buffer.
    let mut crit_scratch: Vec<u32> = Vec::new();
    let mut crit_bounds: Vec<u32> = Vec::new();
    let mut kept: Vec<u32> = Vec::new();
    let mut covered: Vec<u32> = Vec::new();
    'next_element: for &e in &c {
        if let Some(guard) = guard {
            if guard.expired() {
                return ExpandOutcome::DeadlineAborted;
            }
        }
        crit_scratch.clear();
        crit_bounds.clear();
        for i in 0..node.lists.crit_regions() {
            crit_bounds.push(crit_scratch.len() as u32);
            let before = crit_scratch.len();
            crit_scratch.extend(
                node.crit(i)
                    .iter()
                    .copied()
                    .filter(|&fi| !system.subsets()[fi as usize].contains(e)),
            );
            if crit_scratch.len() == before {
                // Some current element would stop being critical: no minimal
                // solution extends S ∪ {e}. The element does not return to
                // `base_cand` either.
                continue 'next_element;
            }
        }
        crit_bounds.push(crit_scratch.len() as u32);
        kept.clear();
        covered.clear();
        for &fi in node.uncov() {
            if system.subsets()[fi as usize].contains(e) {
                covered.push(fi);
            } else {
                kept.push(fi);
            }
        }

        // Assemble the child's interned lists: [kept][crit…][covered].
        let total = kept.len() + crit_scratch.len() + covered.len();
        let mut buf = Vec::with_capacity(total);
        buf.extend_from_slice(&kept);
        buf.extend_from_slice(&crit_scratch);
        buf.extend_from_slice(&covered);
        let mut bounds = Vec::with_capacity(crit_bounds.len() + 2);
        bounds.push(0u32);
        let crit_base = kept.len() as u32;
        for &b in &crit_bounds {
            bounds.push(crit_base + b);
        }
        bounds.push(total as u32);
        let lists = Rc::new(NodeLists {
            buf: buf.into_boxed_slice(),
            bounds: bounds.into_boxed_slice(),
        });

        let mut cand = base_cand.clone();
        if let Some(group) = driver.group_of(e) {
            // RemoveRedundantPreds: same-group elements leave the candidate
            // list for this branch only.
            for other in 0..system.num_elements() {
                if other != e && driver.group_of(other) == Some(group) && cand.contains(other) {
                    cand.remove(other);
                }
            }
        }
        let mut s = node.s.clone();
        s.push(e);
        let mut s_set = node.s_set.clone();
        s_set.insert(e);
        children.push(SearchNode {
            s,
            s_set,
            cand,
            lists,
            can_hit: Rc::clone(&node.can_hit),
        });
        base_cand.insert(e);
    }

    let scored: Vec<(SearchNode, usize)> = children
        .into_iter()
        .map(|child| {
            let priority = match config.order {
                SearchOrder::Dfs => 0,
                // Clamping to the parent's priority keeps the key monotone
                // along every path even if a driver's bound weakens as the
                // candidate pool shrinks — the best-first invariant needs
                // child keys ≥ parent keys.
                SearchOrder::ShortestFirst => {
                    node_priority.max(child.s.len() + driver.lower_bound(system, &child))
                }
            };
            (child, priority)
        })
        .collect();
    frontier.extend(scored, lane);
    ExpandOutcome::Done
}

/// Marker error: the deadline fired inside a wide loop.
struct DeadlineHit;

/// Select the next uncovered subset to branch on.
///
/// Shared by every driver; `strategy` picks among the still-hittable
/// uncovered subsets (iterated in the node's stable order):
///
/// * `MaxIntersection` / `MinIntersection` — extremal `|F ∩ cand|`;
/// * `First` — the first subset considered. When an unhittable subset is
///   fatal (exact enumeration) the scan still continues past the chosen
///   subset, because a later subset with an empty candidate intersection
///   proves the whole branch hopeless; otherwise the scan stops at the first
///   subset, since nothing later can change the choice.
///
/// Returns `Ok(None)` when there is nothing to branch on: either some subset
/// is unhittable and that is fatal, or (non-fatal mode) every uncovered
/// subset has already been marked unhittable. Returns `Err(DeadlineHit)`
/// when the guard expires mid-scan (checked every 128 subsets, so a huge
/// selection loop cannot overshoot the deadline unboundedly).
fn choose_branch_subset(
    system: &SetSystem,
    uncov: &[u32],
    cand: &FixedBitSet,
    can_hit: &FixedBitSet,
    strategy: BranchStrategy,
    unhittable_is_fatal: bool,
    guard: Option<&DeadlineGuard>,
) -> Result<Option<u32>, DeadlineHit> {
    let mut best: Option<(u32, usize)> = None;
    for (step, &fi) in uncov.iter().enumerate() {
        if step % 128 == 127 {
            if let Some(guard) = guard {
                if guard.expired() {
                    return Err(DeadlineHit);
                }
            }
        }
        if !can_hit.contains(fi as usize) {
            continue;
        }
        let inter = system.subsets()[fi as usize].intersection_count(cand);
        if inter == 0 && unhittable_is_fatal {
            return Ok(None);
        }
        best = match (best, strategy) {
            (None, _) => Some((fi, inter)),
            (Some((_, b)), BranchStrategy::MaxIntersection) if inter > b => Some((fi, inter)),
            (Some((_, b)), BranchStrategy::MinIntersection) if inter < b => Some((fi, inter)),
            // `First` (and losing Max/Min comparisons) keep the incumbent.
            (prev, _) => prev,
        };
        if strategy == BranchStrategy::First && !unhittable_is_fatal {
            break;
        }
    }
    Ok(best.map(|(fi, _)| fi))
}

/// Admissible lower bound on the elements any cover below a node must still
/// add: the size of a greedily-built family of pairwise-disjoint uncovered
/// subsets (restricted to candidate elements). Each member of a disjoint
/// family needs its own element, and one element can hit at most one member,
/// so the bound never overestimates and decreases by at most 1 per added
/// element — exactly what best-first ordering requires.
pub fn greedy_disjoint_lower_bound(system: &SetSystem, uncov: &[u32], cand: &FixedBitSet) -> usize {
    let mut used = FixedBitSet::new(system.num_elements());
    let mut bound = 0;
    for &fi in uncov {
        let reachable = system.subsets()[fi as usize].intersection(cand);
        // A subset with no remaining candidates is a dead branch, not an
        // element demand; expansion prunes it.
        if reachable.is_empty() || reachable.intersects(&used) {
            continue;
        }
        used.union_with(&reachable);
        bound += 1;
    }
    bound
}

// ---------------------------------------------------------------------------
// In-place undo walk (unbudgeted exact DFS)
// ---------------------------------------------------------------------------

/// Shared mutable state of the in-place walk.
struct InplaceCtx<'a, D, F> {
    system: &'a SetSystem,
    driver: &'a mut D,
    callback: &'a mut F,
    strategy: BranchStrategy,
    nodes_expanded: u64,
    emitted: usize,
    stopped: bool,
    /// Whether, at stop time, any unexplored sibling anywhere on the path
    /// would have survived the criticality check (i.e. the explicit engine's
    /// frontier would be non-empty).
    unexplored: bool,
    peak_depth: usize,
}

/// The undo-hybrid fast path for unbudgeted DFS runs of drivers with exact
/// classification (see [`SearchDriver::supports_inplace_dfs`]): the same
/// tree, visited in the same order with the same prunes, but mutating one
/// node state in place (push/insert on entry, pop/remove on exit) instead of
/// snapshotting a `SearchNode` per child. This is what reclaims the
/// snapshot overhead of the explicit engine on the exact MMCS kernel.
fn run_dfs_inplace<D, F>(
    system: &SetSystem,
    driver: &mut D,
    strategy: BranchStrategy,
    restrict: Option<&FixedBitSet>,
    callback: &mut F,
) -> SearchOutcome
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    let m = system.num_elements();
    let mut s: Vec<usize> = Vec::new();
    let mut s_set = FixedBitSet::new(m);
    let mut cand = restrict.cloned().unwrap_or_else(|| FixedBitSet::full(m));
    let can_hit = FixedBitSet::full(system.len());
    let uncov: Vec<u32> = (0..system.len() as u32).collect();
    let crit: Vec<Vec<u32>> = Vec::new();
    let mut ctx = InplaceCtx {
        system,
        driver,
        callback,
        strategy,
        nodes_expanded: 0,
        emitted: 0,
        stopped: false,
        unexplored: false,
        peak_depth: 0,
    };
    inplace_walk(
        &mut ctx, &mut s, &mut s_set, &mut cand, &uncov, &crit, &can_hit, 1,
    );
    SearchOutcome {
        emitted: ctx.emitted,
        nodes_expanded: ctx.nodes_expanded,
        truncation: if ctx.stopped && ctx.unexplored {
            Some(Truncation {
                reason: TruncationReason::Callback,
                complete_below: None,
            })
        } else {
            None
        },
        peak_frontier: ctx.peak_depth,
        contractions: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn inplace_walk<D, F>(
    ctx: &mut InplaceCtx<'_, D, F>,
    s: &mut Vec<usize>,
    s_set: &mut FixedBitSet,
    cand: &mut FixedBitSet,
    uncov: &[u32],
    crit: &[Vec<u32>],
    can_hit: &FixedBitSet,
    depth: usize,
) where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    ctx.nodes_expanded += 1;
    ctx.peak_depth = ctx.peak_depth.max(depth);
    if uncov.is_empty() {
        // Criticality is maintained along every path, so a full cover is
        // automatically minimal (the exact classification the driver
        // promised via `supports_inplace_dfs`).
        ctx.emitted += 1;
        if !(ctx.callback)(s_set) {
            ctx.stopped = true;
        }
        return;
    }
    let chosen = match choose_branch_subset(
        ctx.system,
        uncov,
        cand,
        can_hit,
        ctx.strategy,
        ctx.driver.unhittable_is_fatal(),
        None,
    ) {
        Ok(Some(fi)) => fi,
        _ => return,
    };
    let subset = &ctx.system.subsets()[chosen as usize];

    let c: Vec<usize> = cand.intersection(subset).to_vec();
    for &e in &c {
        cand.remove(e);
    }
    let mut stopped_at: Option<usize> = None;
    'next_element: for (idx, &e) in c.iter().enumerate() {
        // Criticality test, building the child's filtered lists.
        let mut new_crit: Vec<Vec<u32>> = Vec::with_capacity(s.len() + 1);
        for crit_u in crit.iter() {
            let filtered: Vec<u32> = crit_u
                .iter()
                .copied()
                .filter(|&fi| !ctx.system.subsets()[fi as usize].contains(e))
                .collect();
            if filtered.is_empty() {
                // `e` stays out of `cand` for later siblings, exactly as in
                // the explicit engine's `base_cand` discipline.
                continue 'next_element;
            }
            new_crit.push(filtered);
        }
        let mut kept: Vec<u32> = Vec::with_capacity(uncov.len());
        let mut covered: Vec<u32> = Vec::new();
        for &fi in uncov {
            if ctx.system.subsets()[fi as usize].contains(e) {
                covered.push(fi);
            } else {
                kept.push(fi);
            }
        }
        new_crit.push(covered);

        let mut group_removed: Vec<usize> = Vec::new();
        if let Some(group) = ctx.driver.group_of(e) {
            for other in 0..ctx.system.num_elements() {
                if other != e && ctx.driver.group_of(other) == Some(group) && cand.contains(other) {
                    cand.remove(other);
                    group_removed.push(other);
                }
            }
        }
        s.push(e);
        s_set.insert(e);
        inplace_walk(ctx, s, s_set, cand, &kept, &new_crit, can_hit, depth + 1);
        s.pop();
        s_set.remove(e);
        for other in group_removed {
            cand.insert(other);
        }
        cand.insert(e);
        if ctx.stopped {
            stopped_at = Some(idx);
            break;
        }
    }
    if let Some(idx) = stopped_at {
        // Mirror the explicit engine's truncation report: the run counts as
        // truncated iff its frontier would be non-empty, i.e. iff some
        // not-yet-visited sibling survives the criticality check (pruned
        // siblings are never materialised as frontier nodes).
        if !ctx.unexplored {
            ctx.unexplored = c[idx + 1..].iter().any(|&e| {
                crit.iter().all(|crit_u| {
                    crit_u
                        .iter()
                        .any(|&fi| !ctx.system.subsets()[fi as usize].contains(e))
                })
            });
        }
    }
    // Restore the candidate pool exactly (criticality-pruned elements did
    // not re-enter above; on an early stop later siblings did not either).
    for &e in &c {
        if !cand.contains(e) {
            cand.insert(e);
        }
    }
}

// ---------------------------------------------------------------------------
// Frontier
// ---------------------------------------------------------------------------

/// A best-lane frontier entry in suspended form: node, priority key, and
/// (shortest-first only) the heap insertion sequence number.
type FrontierEntry = (SearchNode, usize, u64);
/// A spill-lane entry: node plus its (still admissible) priority key.
type SpillEntry = (SearchNode, usize);

/// Heap entry for the best-first frontier: ordered by `(priority, seq)`, so
/// ties pop in insertion order and the traversal is deterministic.
struct HeapEntry {
    priority: usize,
    seq: u64,
    node: SearchNode,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

/// The frontier disciplines behind one push/pop interface.
enum Frontier {
    /// LIFO stack (priorities are carried but ignored).
    Dfs(Vec<(SearchNode, usize)>),
    /// Min-heap on `(priority, insertion seq)` plus the memory-bound DFS
    /// spill lane, which is drained (LIFO) before the heap is popped.
    Shortest {
        heap: BinaryHeap<Reverse<HeapEntry>>,
        spill: Vec<(SearchNode, usize)>,
        next_seq: u64,
        cap: Option<usize>,
        contractions: u64,
    },
}

impl Frontier {
    fn new(config: &SearchConfig) -> Self {
        match config.order {
            SearchOrder::Dfs => Frontier::Dfs(Vec::new()),
            SearchOrder::ShortestFirst => Frontier::Shortest {
                heap: BinaryHeap::new(),
                spill: Vec::new(),
                next_seq: 0,
                cap: config.budget.max_frontier_nodes,
                contractions: 0,
            },
        }
    }

    /// Rebuild a frontier from a suspended run's parts. The memory cap comes
    /// from the *resuming* config; keep it identical across slices for the
    /// cut-and-resume determinism guarantee to hold.
    fn restore(
        config: &SearchConfig,
        entries: Vec<FrontierEntry>,
        spill: Vec<SpillEntry>,
        next_seq: u64,
    ) -> Self {
        match config.order {
            SearchOrder::Dfs => {
                Frontier::Dfs(entries.into_iter().map(|(n, p, _)| (n, p)).collect())
            }
            SearchOrder::ShortestFirst => {
                let heap = entries
                    .into_iter()
                    .map(|(node, priority, seq)| {
                        Reverse(HeapEntry {
                            priority,
                            seq,
                            node,
                        })
                    })
                    .collect();
                Frontier::Shortest {
                    heap,
                    spill,
                    next_seq,
                    cap: config.budget.max_frontier_nodes,
                    contractions: 0,
                }
            }
        }
    }

    /// Push a single node on the best lane (used for the root).
    fn push_best(&mut self, node: SearchNode, priority: usize) {
        match self {
            Frontier::Dfs(stack) => stack.push((node, priority)),
            Frontier::Shortest { heap, next_seq, .. } => {
                heap.push(Reverse(HeapEntry {
                    priority,
                    seq: *next_seq,
                    node,
                }));
                *next_seq += 1;
            }
        }
    }

    /// Add a sibling group in its natural processing order: DFS lanes get
    /// them reversed (so the first sibling pops first), the heap in order
    /// (so equal-priority siblings pop FIFO). Children of spill-lane nodes
    /// stay on the spill lane — their subtrees are expanded depth-first in
    /// place, which is what keeps memory bounded after a contraction.
    fn extend(&mut self, scored: Vec<(SearchNode, usize)>, lane: Lane) {
        match self {
            Frontier::Dfs(stack) => stack.extend(scored.into_iter().rev()),
            Frontier::Shortest { spill, .. } if lane == Lane::Spill => {
                spill.extend(scored.into_iter().rev());
            }
            Frontier::Shortest { .. } => {
                for (node, priority) in scored {
                    self.push_best(node, priority);
                }
                self.contract_if_needed();
            }
        }
    }

    /// Memory-bound contraction: when the heap outgrows the cap, keep the
    /// best half and spill the deepest tail to the DFS lane (smallest key on
    /// top, so the least-bad spilled subtree is expanded first). Halving —
    /// rather than trimming to the cap — amortises the `O(n log n)` drain
    /// over many pushes.
    fn contract_if_needed(&mut self) {
        let Frontier::Shortest {
            heap,
            spill,
            cap: Some(cap),
            contractions,
            ..
        } = self
        else {
            return;
        };
        if heap.len() <= *cap {
            return;
        }
        let keep = (*cap / 2).max(1);
        let mut entries: Vec<HeapEntry> = std::mem::take(heap)
            .into_iter()
            .map(|Reverse(e)| e)
            .collect();
        entries.sort_unstable_by_key(|entry| (entry.priority, entry.seq));
        let tail = entries.split_off(keep);
        *heap = entries.into_iter().map(Reverse).collect();
        // Deepest first onto the LIFO lane, so the shallowest spilled node
        // is processed first.
        spill.extend(tail.into_iter().rev().map(|e| (e.node, e.priority)));
        *contractions += 1;
    }

    fn pop(&mut self) -> Option<(SearchNode, usize, Lane)> {
        match self {
            Frontier::Dfs(stack) => stack.pop().map(|(n, p)| (n, p, Lane::Best)),
            Frontier::Shortest { heap, spill, .. } => {
                if let Some((node, priority)) = spill.pop() {
                    return Some((node, priority, Lane::Spill));
                }
                heap.pop()
                    .map(|Reverse(entry)| (entry.node, entry.priority, Lane::Best))
            }
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn len(&self) -> usize {
        match self {
            Frontier::Dfs(stack) => stack.len(),
            Frontier::Shortest { heap, spill, .. } => heap.len() + spill.len(),
        }
    }

    fn contractions(&self) -> u64 {
        match self {
            Frontier::Dfs(_) => 0,
            Frontier::Shortest { contractions, .. } => *contractions,
        }
    }

    /// Smallest priority still pending — only meaningful for the best-first
    /// frontier, where it bounds the size of every not-yet-emitted cover
    /// (the spill lane is included: its keys are admissible too).
    fn min_priority(&self) -> Option<usize> {
        match self {
            Frontier::Dfs(_) => None,
            Frontier::Shortest { heap, spill, .. } => {
                let heap_min = heap.peek().map(|Reverse(entry)| entry.priority);
                let spill_min = spill.iter().map(|(_, p)| *p).min();
                match (heap_min, spill_min) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                }
            }
        }
    }

    /// Decompose into suspendable parts: best-lane entries (heap sorted by
    /// key for a deterministic stored form; DFS stack bottom→top), the spill
    /// lane, and the sequence counter.
    fn into_parts(self) -> (Vec<FrontierEntry>, Vec<SpillEntry>, u64) {
        match self {
            Frontier::Dfs(stack) => (
                stack.into_iter().map(|(n, p)| (n, p, 0)).collect(),
                Vec::new(),
                0,
            ),
            Frontier::Shortest {
                heap,
                spill,
                next_seq,
                ..
            } => {
                let mut entries: Vec<FrontierEntry> = heap
                    .into_iter()
                    .map(|Reverse(e)| (e.node, e.priority, e.seq))
                    .collect();
                entries.sort_unstable_by_key(|&(_, priority, seq)| (priority, seq));
                (entries, spill, next_seq)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(m: usize) -> FixedBitSet {
        FixedBitSet::full(m)
    }

    fn choose(
        system: &SetSystem,
        uncov: &[u32],
        cand: &FixedBitSet,
        can_hit: &FixedBitSet,
        strategy: BranchStrategy,
        fatal: bool,
    ) -> Option<u32> {
        choose_branch_subset(system, uncov, cand, can_hit, strategy, fatal, None)
            .ok()
            .unwrap()
    }

    /// Exact-MMCS driver clone for engine-level tests (the real one lives in
    /// `crate::mmcs`).
    struct TestExactDriver;
    impl SearchDriver for TestExactDriver {
        fn classify(&mut self, _system: &SetSystem, node: &SearchNode) -> NodeDisposition {
            if node.uncov().is_empty() {
                NodeDisposition::Emit
            } else {
                NodeDisposition::Expand
            }
        }
        fn lower_bound(&mut self, system: &SetSystem, node: &SearchNode) -> usize {
            greedy_disjoint_lower_bound(system, node.uncov(), node.cand())
        }
    }

    fn collect_resumable(
        system: &SetSystem,
        config: &SearchConfig,
    ) -> (Vec<Vec<usize>>, SearchOutcome, Option<SuspendedSearch>) {
        let mut out = Vec::new();
        let (outcome, suspended) = run_search_resumable(
            system,
            &mut TestExactDriver,
            config,
            &mut |s: &FixedBitSet| {
                out.push(s.to_vec());
                true
            },
        );
        (out, outcome, suspended)
    }

    #[test]
    fn first_strategy_picks_the_first_uncovered_subset() {
        // Pin the `BranchStrategy::First` semantics that the old MMCS
        // implementation obscured behind a shadowed match arm: the *first*
        // subset in `uncov` order wins regardless of intersection sizes.
        let sys = SetSystem::from_indices(5, &[&[0, 1, 2, 3], &[4], &[0, 4]]);
        let cand = full(5);
        let can_hit = full(3);
        let chosen = choose(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::First,
            true,
        );
        assert_eq!(chosen, Some(0));
        // A different uncov order changes the choice: First is order-driven.
        let chosen = choose(
            &sys,
            &[2, 1, 0],
            &cand,
            &can_hit,
            BranchStrategy::First,
            true,
        );
        assert_eq!(chosen, Some(2));
    }

    #[test]
    fn first_strategy_still_detects_fatal_unhittable_subsets() {
        // Exact enumeration must keep scanning past the chosen subset: an
        // unhittable subset later in the list kills the branch.
        let sys = SetSystem::from_indices(3, &[&[0, 1], &[2]]);
        let mut cand = full(3);
        cand.remove(2); // subset {2} can no longer be hit
        let chosen = choose(&sys, &[0, 1], &cand, &full(2), BranchStrategy::First, true);
        assert_eq!(chosen, None, "fatal unhittable subset must kill the branch");
    }

    #[test]
    fn first_strategy_non_fatal_stops_at_the_first_selectable_subset() {
        // Approximate enumeration: unhittable subsets are skipped via
        // `can_hit`, and the scan stops at the first live subset.
        let sys = SetSystem::from_indices(3, &[&[0], &[1], &[2]]);
        let mut can_hit = full(3);
        can_hit.remove(0);
        let chosen = choose(
            &sys,
            &[0, 1, 2],
            &full(3),
            &can_hit,
            BranchStrategy::First,
            false,
        );
        assert_eq!(chosen, Some(1), "first *live* subset wins");
    }

    #[test]
    fn non_fatal_mode_accepts_subsets_with_empty_intersection() {
        // The approximate enumerator may select a subset no candidate hits —
        // its skip branch then marks the subset unhittable. Preserved here.
        let sys = SetSystem::from_indices(2, &[&[0]]);
        let cand = FixedBitSet::new(2); // nothing left
        let chosen = choose(
            &sys,
            &[0],
            &cand,
            &full(1),
            BranchStrategy::MaxIntersection,
            false,
        );
        assert_eq!(chosen, Some(0));
    }

    #[test]
    fn max_and_min_strategies_pick_extremal_intersections() {
        let sys = SetSystem::from_indices(4, &[&[0], &[0, 1, 2], &[2, 3]]);
        let cand = full(4);
        let can_hit = full(3);
        let max = choose(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::MaxIntersection,
            true,
        );
        assert_eq!(max, Some(1));
        let min = choose(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::MinIntersection,
            true,
        );
        assert_eq!(min, Some(0));
    }

    #[test]
    fn disjoint_lower_bound_counts_a_disjoint_family() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[1, 2], &[3], &[4, 5]]);
        let uncov: Vec<u32> = (0..4).collect();
        // {0,1}, {3}, {4,5} are pairwise disjoint; {1,2} overlaps the first.
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &full(6)), 3);
        // Restricting candidates merges demands: without element 1 the first
        // two subsets reduce to {0} and {2}, still disjoint — bound 4.
        let mut cand = full(6);
        cand.remove(1);
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &cand), 4);
        // A subset with no remaining candidates contributes nothing.
        let mut cand = full(6);
        cand.remove(3);
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &cand), 2);
    }

    #[test]
    fn budget_default_is_unlimited() {
        let budget = SearchBudget::default();
        assert!(budget.is_unlimited());
        let budget = budget
            .with_max_nodes(10)
            .with_deadline(Duration::from_secs(1))
            .with_max_emitted(5)
            .with_max_frontier_nodes(1000);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.max_nodes, Some(10));
        assert_eq!(budget.max_emitted, Some(5));
        assert_eq!(budget.max_frontier_nodes, Some(1000));
        assert!(!SearchBudget::unlimited()
            .with_max_frontier_nodes(7)
            .is_unlimited());
    }

    #[test]
    fn dfs_truncation_reports_no_complete_below() {
        // Under DFS the frontier priorities are all zero — not an admissible
        // completeness bound — so a truncated DFS run must never claim a
        // "provably complete below k" size.
        let sys = SetSystem::from_indices(8, &[&[0, 1], &[2, 3], &[4, 5], &[6, 7]]);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::Dfs,
            budget: SearchBudget::unlimited().with_max_nodes(3),
        };
        let (_, outcome, suspended) = collect_resumable(&sys, &config);
        let truncation = outcome.truncation.expect("run must be truncated");
        assert_eq!(truncation.reason, TruncationReason::MaxNodes);
        assert_eq!(
            truncation.complete_below, None,
            "DFS must not report a completeness bound"
        );
        assert!(suspended.is_some(), "budget cut must yield a resume token");
    }

    #[test]
    fn mid_expansion_deadline_aborts_atomically() {
        // A deadline that is already expired when `expand` runs must abort
        // the expansion before pushing any child — the in-flight node is
        // parked and re-expanded on resume, so no child is lost or doubled.
        let indices: Vec<usize> = (0..512).collect();
        let sys = SetSystem::from_indices(512, &[&indices]);
        let node = SearchNode::root_within(&sys, None);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::ShortestFirst,
            budget: SearchBudget::unlimited().with_deadline(Duration::ZERO),
        };
        let mut frontier = Frontier::new(&config);
        let guard = DeadlineGuard {
            start: Instant::now(),
            limit: Duration::ZERO,
        };
        let outcome = expand(
            &sys,
            &mut TestExactDriver,
            &config,
            &node,
            0,
            Lane::Best,
            Some(&guard),
            &mut frontier,
        );
        assert!(matches!(outcome, ExpandOutcome::DeadlineAborted));
        assert!(frontier.is_empty(), "no partial children may be pushed");
    }

    #[test]
    fn wide_expansion_deadline_overshoot_is_bounded_and_resumable() {
        // One subset with 3000 elements: a single expansion generates 3000
        // children. A tiny deadline must cut the run (at the loop top or
        // mid-expansion) well before the full expansion would complete, and
        // resuming to completion must emit exactly the uncapped sequence.
        let indices: Vec<usize> = (0..3000).collect();
        let sys = SetSystem::from_indices(3000, &[&indices]);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::ShortestFirst,
            budget: SearchBudget::unlimited(),
        };
        let (uncapped, outcome, _) = collect_resumable(&sys, &config);
        assert!(outcome.is_exhaustive());
        assert_eq!(uncapped.len(), 3000);

        let cut_config = SearchConfig {
            budget: SearchBudget::unlimited().with_deadline(Duration::from_nanos(1)),
            ..config
        };
        let clock = Instant::now();
        let (mut covers, outcome, mut suspended) = collect_resumable(&sys, &cut_config);
        assert!(
            clock.elapsed() < Duration::from_secs(2),
            "deadline overshoot must stay bounded"
        );
        assert_eq!(
            outcome.truncation.map(|t| t.reason),
            Some(TruncationReason::Deadline)
        );
        let mut guard_iters = 0;
        while let Some(token) = suspended.take() {
            guard_iters += 1;
            assert!(guard_iters < 10, "resume failed to make progress");
            let (_, next) = resume_search(
                &sys,
                &mut TestExactDriver,
                &config,
                token,
                &mut |s: &FixedBitSet| {
                    covers.push(s.to_vec());
                    true
                },
            );
            suspended = next;
        }
        assert_eq!(covers, uncapped, "cut + resume must replay the sequence");
    }

    #[test]
    fn memory_bound_contracts_and_preserves_the_answer_set() {
        // 8 disjoint pairs: 2^8 = 256 covers; the unbounded shortest-first
        // frontier grows into the hundreds. With a 16-node cap the frontier
        // must stay within cap + spilled half + transient DFS depth, the
        // run must report contractions, and the emitted family must be
        // unchanged (only its order may degrade).
        let pairs: Vec<Vec<usize>> = (0..8).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let refs: Vec<&[usize]> = pairs.iter().map(|p| p.as_slice()).collect();
        let sys = SetSystem::from_indices(16, &refs);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::ShortestFirst,
            budget: SearchBudget::unlimited(),
        };
        let (unbounded, outcome, _) = collect_resumable(&sys, &config);
        assert_eq!(unbounded.len(), 256);
        assert!(outcome.contractions == 0);
        assert!(
            outcome.peak_frontier > 48,
            "test instance too small to exercise the bound (peak {})",
            outcome.peak_frontier
        );

        let cap = 16;
        let bounded_config = SearchConfig {
            budget: SearchBudget::unlimited().with_max_frontier_nodes(cap),
            ..config
        };
        let (bounded, outcome, suspended) = collect_resumable(&sys, &bounded_config);
        assert!(suspended.is_none());
        assert!(outcome.is_exhaustive());
        assert!(outcome.contractions > 0, "the cap must have fired");
        assert!(
            outcome.peak_frontier <= 3 * cap,
            "peak frontier {} exceeds the documented bound for cap {cap}",
            outcome.peak_frontier
        );
        let canon = |mut v: Vec<Vec<usize>>| {
            v.sort();
            v
        };
        assert_eq!(canon(bounded), canon(unbounded));
    }

    #[test]
    fn memory_bounded_run_is_still_resumable_deterministically() {
        let pairs: Vec<Vec<usize>> = (0..7).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let refs: Vec<&[usize]> = pairs.iter().map(|p| p.as_slice()).collect();
        let sys = SetSystem::from_indices(14, &refs);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::ShortestFirst,
            budget: SearchBudget::unlimited().with_max_frontier_nodes(8),
        };
        let (reference, outcome, _) = collect_resumable(&sys, &config);
        assert!(outcome.is_exhaustive());

        let mut covers = Vec::new();
        let slice_config = SearchConfig {
            budget: config.budget.with_max_nodes(13),
            ..config
        };
        let (_, mut suspended) = run_search_resumable(
            &sys,
            &mut TestExactDriver,
            &slice_config,
            &mut |s: &FixedBitSet| {
                covers.push(s.to_vec());
                true
            },
        );
        let mut slices = 1;
        while let Some(token) = suspended.take() {
            slices += 1;
            assert!(slices < 10_000, "runaway resume loop");
            assert_eq!(token.total_emitted(), covers.len());
            let (_, next) = resume_search(
                &sys,
                &mut TestExactDriver,
                &slice_config,
                token,
                &mut |s: &FixedBitSet| {
                    covers.push(s.to_vec());
                    true
                },
            );
            suspended = next;
        }
        assert!(slices > 2, "the slice budget never fired");
        assert_eq!(
            covers, reference,
            "sliced memory-bounded run must replay the single-run sequence"
        );
    }

    #[test]
    fn resume_rejects_mismatched_configuration() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[2, 3]]);
        let config = SearchConfig {
            strategy: BranchStrategy::default(),
            order: SearchOrder::ShortestFirst,
            budget: SearchBudget::unlimited().with_max_nodes(1),
        };
        let (_, _, suspended) = collect_resumable(&sys, &config);
        let token = suspended.expect("one-node budget must suspend");
        let wrong_order = SearchConfig {
            order: SearchOrder::Dfs,
            ..config
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            resume_search(
                &sys,
                &mut TestExactDriver,
                &wrong_order,
                token,
                &mut |_: &FixedBitSet| true,
            )
        }));
        assert!(result.is_err(), "order mismatch must be rejected");
    }
}
