//! The shared tree-search engine behind every hitting-set enumerator.
//!
//! Both the exact MMCS enumeration ([`crate::mmcs`]) and the approximate
//! `ADCEnum` core ([`crate::approx`]) explore the same search tree: a node is
//! a partial solution `S` together with the bookkeeping MMCS maintains —
//! `cand` (elements still allowed into `S`), `uncov` (subsets not yet hit),
//! and `crit` (per element of `S`, the subsets it alone hits — the minimality
//! invariant). The two algorithms differ only in *local* decisions: when a
//! node is terminal, whether a non-hitting branch exists, and how candidate
//! lists are thinned. This module owns the tree walk; the algorithms supply
//! those decisions through [`SearchDriver`].
//!
//! The walk is an **explicit frontier**, not recursion, which buys two things
//! the recursive implementations could not offer:
//!
//! * **Pluggable order** ([`SearchOrder`]): a LIFO stack reproduces the
//!   classic depth-first traversal; [`SearchOrder::ShortestFirst`] is a
//!   best-first priority queue keyed by `|S|` plus an admissible lower bound
//!   on the elements still needed ([`greedy_disjoint_lower_bound`]), which
//!   guarantees covers are emitted in nondecreasing size — so any output cap
//!   keeps the entire shortest frontier instead of an arbitrary DFS prefix.
//! * **Anytime budgets** ([`SearchBudget`]): node, wall-clock, and emission
//!   limits checked at every step, with a [`SearchOutcome`] reporting whether
//!   the run was exhaustive and, under shortest-first, up to which cover size
//!   the emitted frontier is provably complete.

use crate::{BranchStrategy, SetSystem};
use adc_data::FixedBitSet;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// The order in which frontier nodes are expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchOrder {
    /// Classic depth-first traversal (a LIFO stack): children are explored in
    /// the order the recursive algorithms visit them. Cheapest per node, but
    /// emission order is arbitrary, so truncated runs keep an arbitrary
    /// prefix of the answer set.
    #[default]
    Dfs,
    /// Best-first traversal keyed by `|S| +` an admissible lower bound on the
    /// elements still needed. Covers are emitted in nondecreasing size, and
    /// ties are broken by insertion order, so truncated runs keep exactly the
    /// shortest part of the minimal frontier, deterministically.
    ShortestFirst,
}

/// Resource limits for one search run. The default is unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchBudget {
    /// Stop after expanding this many nodes.
    pub max_nodes: Option<u64>,
    /// Stop once this much wall-clock time has elapsed since the search
    /// started (checked before each node expansion).
    pub deadline: Option<Duration>,
    /// Stop after emitting this many results.
    pub max_emitted: Option<usize>,
}

impl SearchBudget {
    /// No limits (same as `Default`).
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// Limit the number of expanded nodes.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = Some(max_nodes);
        self
    }

    /// Limit the wall-clock time, measured from the start of the search.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Limit the number of emitted results.
    pub fn with_max_emitted(mut self, max_emitted: usize) -> Self {
        self.max_emitted = Some(max_emitted);
        self
    }

    /// `true` when no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_nodes.is_none() && self.deadline.is_none() && self.max_emitted.is_none()
    }
}

/// Why a search stopped before exhausting its frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// [`SearchBudget::max_nodes`] was reached.
    MaxNodes,
    /// [`SearchBudget::deadline`] passed.
    Deadline,
    /// [`SearchBudget::max_emitted`] was reached.
    MaxEmitted,
    /// The caller's callback returned `false`.
    Callback,
}

/// Description of a truncated (non-exhaustive) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncation {
    /// What cut the search short.
    pub reason: TruncationReason,
    /// Under [`SearchOrder::ShortestFirst`]: every cover of size *strictly
    /// below* this was emitted before the cut — the frontier is complete up
    /// to (but excluding) this size. `None` under [`SearchOrder::Dfs`], where
    /// no such guarantee exists.
    pub complete_below: Option<usize>,
}

/// What one search run did and whether it finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Number of results handed to the callback.
    pub emitted: usize,
    /// Number of frontier nodes expanded (the explicit-stack equivalent of
    /// the recursive call count).
    pub nodes_expanded: u64,
    /// `None` when the frontier was exhausted — the enumeration is complete.
    /// `Some` when a budget or the callback cut the run short.
    pub truncation: Option<Truncation>,
}

impl SearchOutcome {
    /// `true` when the whole search space was explored.
    pub fn is_exhaustive(&self) -> bool {
        self.truncation.is_none()
    }
}

/// A frontier node: a partial solution plus the MMCS bookkeeping needed to
/// expand it independently of every other node.
#[derive(Debug, Clone)]
pub struct SearchNode {
    /// Elements of the partial solution, in insertion order.
    s: Vec<usize>,
    /// The partial solution as a bitset.
    s_set: FixedBitSet,
    /// Elements still allowed into the solution.
    cand: FixedBitSet,
    /// Indexes of subsets not yet hit by `s`, in stable order.
    uncov: Vec<usize>,
    /// `crit[i]` = subsets for which `s[i]` is the only hitter (parallel to
    /// `s`; every entry non-empty — the MMCS minimality invariant).
    crit: Vec<Vec<usize>>,
    /// Subsets still reachable by some candidate (only thinned by drivers
    /// that take the non-hitting branch; full otherwise).
    can_hit: FixedBitSet,
}

impl SearchNode {
    fn root(system: &SetSystem) -> Self {
        let m = system.num_elements();
        SearchNode {
            s: Vec::new(),
            s_set: FixedBitSet::new(m),
            cand: FixedBitSet::full(m),
            uncov: (0..system.len()).collect(),
            crit: Vec::new(),
            can_hit: FixedBitSet::full(system.len()),
        }
    }

    /// The partial solution as a bitset.
    pub fn solution(&self) -> &FixedBitSet {
        &self.s_set
    }

    /// The partial solution's elements in insertion order.
    pub fn elements(&self) -> &[usize] {
        &self.s
    }

    /// Candidate elements still allowed into the solution.
    pub fn cand(&self) -> &FixedBitSet {
        &self.cand
    }

    /// Subsets not yet hit by the partial solution.
    pub fn uncov(&self) -> &[usize] {
        &self.uncov
    }
}

/// What the engine should do with a freshly popped node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeDisposition {
    /// Terminal: hand the solution to the callback; do not expand.
    Emit,
    /// Terminal: neither emit nor expand (e.g. threshold met but not minimal).
    Discard,
    /// Interior: expand by branching on an uncovered subset.
    Expand,
}

/// The algorithm-specific decisions plugged into [`run_search`].
///
/// The engine owns node expansion (candidate thinning, the criticality /
/// minimality invariant, subset selection, frontier discipline, budgets);
/// the driver decides when a node is terminal and which optional rules —
/// non-hitting branch, redundant-group suppression, lower bounds — apply.
pub trait SearchDriver {
    /// Classify a popped node: emit, discard, or expand.
    fn classify(&mut self, system: &SetSystem, node: &SearchNode) -> NodeDisposition;

    /// Whether expansion also produces the branch that does *not* hit the
    /// chosen subset (`ADCEnum`'s second branch). Defaults to `false` (exact
    /// MMCS: every hitting set must hit every subset).
    fn wants_skip_branch(&self) -> bool {
        false
    }

    /// Given the reduced candidate list of the non-hitting branch, decide
    /// whether that branch is worth exploring (the `WillCover` pruning).
    /// Only called when [`Self::wants_skip_branch`] is `true`.
    fn explore_skip_branch(
        &mut self,
        _system: &SetSystem,
        _solution: &FixedBitSet,
        _cand: &FixedBitSet,
    ) -> bool {
        true
    }

    /// Structure group of an element, if redundant-group suppression applies:
    /// when an element enters the solution, the rest of its group leaves the
    /// candidate list for that branch.
    fn group_of(&self, _element: usize) -> Option<usize> {
        None
    }

    /// Admissible lower bound on how many more elements any solution emitted
    /// below `node` must add. Used by [`SearchOrder::ShortestFirst`] to order
    /// the frontier; must never overestimate. Defaults to 0 (always safe).
    fn lower_bound(&mut self, _system: &SetSystem, _node: &SearchNode) -> usize {
        0
    }

    /// Whether an uncovered subset that no candidate can hit makes the whole
    /// branch hopeless. `true` for exact enumeration (the subset can never be
    /// hit); `false` for approximate enumeration, where such subsets are
    /// tracked as unhittable and simply never branched on again.
    fn unhittable_is_fatal(&self) -> bool {
        true
    }
}

/// Engine configuration: branching strategy, frontier order, budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchConfig {
    /// How the next uncovered subset to hit is selected.
    pub strategy: BranchStrategy,
    /// Frontier discipline.
    pub order: SearchOrder,
    /// Resource limits.
    pub budget: SearchBudget,
}

/// Run the search over `system` with the given driver and configuration,
/// invoking `callback` once per emitted solution. The callback may return
/// `false` to stop the search early.
pub fn run_search<D, F>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    callback: &mut F,
) -> SearchOutcome
where
    D: SearchDriver,
    F: FnMut(&FixedBitSet) -> bool,
{
    let start = Instant::now();
    let mut frontier = Frontier::new(config.order);
    let root = SearchNode::root(system);
    let root_priority = match config.order {
        SearchOrder::Dfs => 0,
        SearchOrder::ShortestFirst => driver.lower_bound(system, &root),
    };
    frontier.push(root, root_priority);

    let mut nodes_expanded: u64 = 0;
    let mut emitted: usize = 0;
    let mut stop: Option<TruncationReason> = None;

    while !frontier.is_empty() {
        if let Some(max) = config.budget.max_nodes {
            if nodes_expanded >= max {
                stop = Some(TruncationReason::MaxNodes);
                break;
            }
        }
        if let Some(limit) = config.budget.deadline {
            if start.elapsed() >= limit {
                stop = Some(TruncationReason::Deadline);
                break;
            }
        }
        let (node, priority) = frontier.pop().expect("frontier checked non-empty");
        nodes_expanded += 1;
        match driver.classify(system, &node) {
            NodeDisposition::Emit => {
                emitted += 1;
                if !callback(&node.s_set) {
                    stop = Some(TruncationReason::Callback);
                    break;
                }
                if let Some(max) = config.budget.max_emitted {
                    if emitted >= max {
                        stop = Some(TruncationReason::MaxEmitted);
                        break;
                    }
                }
            }
            NodeDisposition::Discard => {}
            NodeDisposition::Expand => {
                expand(system, driver, config, &node, priority, &mut frontier);
            }
        }
    }

    let truncation = match stop {
        Some(reason) if !frontier.is_empty() => Some(Truncation {
            reason,
            complete_below: frontier.min_priority(),
        }),
        // The frontier drained on the same step the cut fired: the
        // enumeration is in fact complete, so report it as exhaustive.
        _ => None,
    };
    SearchOutcome {
        emitted,
        nodes_expanded,
        truncation,
    }
}

/// Expand one interior node: pick the subset to branch on, generate the
/// optional non-hitting child and one child per admissible hitting element
/// (enforcing the criticality invariant), and push them onto the frontier.
fn expand<D: SearchDriver>(
    system: &SetSystem,
    driver: &mut D,
    config: &SearchConfig,
    node: &SearchNode,
    node_priority: usize,
    frontier: &mut Frontier,
) {
    let Some(chosen) = choose_branch_subset(
        system,
        &node.uncov,
        &node.cand,
        &node.can_hit,
        config.strategy,
        driver.unhittable_is_fatal(),
    ) else {
        return;
    };
    let subset = &system.subsets()[chosen];

    // Children are generated in the order the recursive algorithms visit
    // them: the non-hitting branch first, then each hitting element in
    // ascending order. The frontier restores that order for DFS.
    let mut children: Vec<SearchNode> = Vec::new();

    if driver.wants_skip_branch() {
        // Branch that does NOT hit the chosen subset: every element of the
        // subset leaves the candidate list, and any uncovered subset left
        // without candidates is marked unhittable (`UpdateCanCover`).
        let mut skip_cand = node.cand.clone();
        skip_cand.difference_with(subset);
        let mut skip_can_hit = node.can_hit.clone();
        for &fi in &node.uncov {
            if skip_can_hit.contains(fi) && !system.subsets()[fi].intersects(&skip_cand) {
                skip_can_hit.remove(fi);
            }
        }
        if driver.explore_skip_branch(system, &node.s_set, &skip_cand) {
            children.push(SearchNode {
                s: node.s.clone(),
                s_set: node.s_set.clone(),
                cand: skip_cand,
                uncov: node.uncov.clone(),
                crit: node.crit.clone(),
                can_hit: skip_can_hit,
            });
        }
    }

    // Hitting children. `base_cand` reproduces the sequential candidate
    // discipline of MMCS: all of `C = cand ∩ F` leaves the pool first, and an
    // element re-enters it for *later* siblings only after passing the
    // criticality test (a non-critical element can never become critical for
    // a superset of S).
    let c: Vec<usize> = node.cand.intersection(subset).to_vec();
    let mut base_cand = node.cand.clone();
    for &e in &c {
        base_cand.remove(e);
    }
    'next_element: for &e in &c {
        let mut crit = Vec::with_capacity(node.s.len() + 1);
        for crit_u in &node.crit {
            let filtered: Vec<usize> = crit_u
                .iter()
                .copied()
                .filter(|&fi| !system.subsets()[fi].contains(e))
                .collect();
            if filtered.is_empty() {
                // Some current element would stop being critical: no minimal
                // solution extends S ∪ {e}. The element does not return to
                // `base_cand` either.
                continue 'next_element;
            }
            crit.push(filtered);
        }
        let mut covered = Vec::new();
        let mut kept = Vec::with_capacity(node.uncov.len());
        for &fi in &node.uncov {
            if system.subsets()[fi].contains(e) {
                covered.push(fi);
            } else {
                kept.push(fi);
            }
        }
        crit.push(covered);

        let mut cand = base_cand.clone();
        if let Some(group) = driver.group_of(e) {
            // RemoveRedundantPreds: same-group elements leave the candidate
            // list for this branch only.
            for other in 0..system.num_elements() {
                if other != e && driver.group_of(other) == Some(group) && cand.contains(other) {
                    cand.remove(other);
                }
            }
        }
        let mut s = node.s.clone();
        s.push(e);
        let mut s_set = node.s_set.clone();
        s_set.insert(e);
        children.push(SearchNode {
            s,
            s_set,
            cand,
            uncov: kept,
            crit,
            can_hit: node.can_hit.clone(),
        });
        base_cand.insert(e);
    }

    let scored: Vec<(SearchNode, usize)> = children
        .into_iter()
        .map(|child| {
            let priority = match config.order {
                SearchOrder::Dfs => 0,
                // Clamping to the parent's priority keeps the key monotone
                // along every path even if a driver's bound weakens as the
                // candidate pool shrinks — the best-first invariant needs
                // child keys ≥ parent keys.
                SearchOrder::ShortestFirst => {
                    node_priority.max(child.s.len() + driver.lower_bound(system, &child))
                }
            };
            (child, priority)
        })
        .collect();
    frontier.extend(scored);
}

/// Select the next uncovered subset to branch on.
///
/// Shared by every driver; `strategy` picks among the still-hittable
/// uncovered subsets (iterated in the node's stable order):
///
/// * `MaxIntersection` / `MinIntersection` — extremal `|F ∩ cand|`;
/// * `First` — the first subset considered. When an unhittable subset is
///   fatal (exact enumeration) the scan still continues past the chosen
///   subset, because a later subset with an empty candidate intersection
///   proves the whole branch hopeless; otherwise the scan stops at the first
///   subset, since nothing later can change the choice.
///
/// Returns `None` when there is nothing to branch on: either some subset is
/// unhittable and that is fatal, or (non-fatal mode) every uncovered subset
/// has already been marked unhittable.
fn choose_branch_subset(
    system: &SetSystem,
    uncov: &[usize],
    cand: &FixedBitSet,
    can_hit: &FixedBitSet,
    strategy: BranchStrategy,
    unhittable_is_fatal: bool,
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for &fi in uncov {
        if !can_hit.contains(fi) {
            continue;
        }
        let inter = system.subsets()[fi].intersection_count(cand);
        if inter == 0 && unhittable_is_fatal {
            return None;
        }
        best = match (best, strategy) {
            (None, _) => Some((fi, inter)),
            (Some((_, b)), BranchStrategy::MaxIntersection) if inter > b => Some((fi, inter)),
            (Some((_, b)), BranchStrategy::MinIntersection) if inter < b => Some((fi, inter)),
            // `First` (and losing Max/Min comparisons) keep the incumbent.
            (prev, _) => prev,
        };
        if strategy == BranchStrategy::First && !unhittable_is_fatal {
            break;
        }
    }
    best.map(|(fi, _)| fi)
}

/// Admissible lower bound on the elements any cover below a node must still
/// add: the size of a greedily-built family of pairwise-disjoint uncovered
/// subsets (restricted to candidate elements). Each member of a disjoint
/// family needs its own element, and one element can hit at most one member,
/// so the bound never overestimates and decreases by at most 1 per added
/// element — exactly what best-first ordering requires.
pub fn greedy_disjoint_lower_bound(
    system: &SetSystem,
    uncov: &[usize],
    cand: &FixedBitSet,
) -> usize {
    let mut used = FixedBitSet::new(system.num_elements());
    let mut bound = 0;
    for &fi in uncov {
        let reachable = system.subsets()[fi].intersection(cand);
        // A subset with no remaining candidates is a dead branch, not an
        // element demand; expansion prunes it.
        if reachable.is_empty() || reachable.intersects(&used) {
            continue;
        }
        used.union_with(&reachable);
        bound += 1;
    }
    bound
}

/// Heap entry for the best-first frontier: ordered by `(priority, seq)`, so
/// ties pop in insertion order and the traversal is deterministic.
struct HeapEntry {
    priority: usize,
    seq: u64,
    node: SearchNode,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.seq).cmp(&(other.priority, other.seq))
    }
}

/// The two frontier disciplines behind one push/pop interface.
enum Frontier {
    /// LIFO stack (priorities are carried but ignored).
    Dfs(Vec<(SearchNode, usize)>),
    /// Min-heap on `(priority, insertion seq)`.
    Shortest {
        heap: BinaryHeap<Reverse<HeapEntry>>,
        next_seq: u64,
    },
}

impl Frontier {
    fn new(order: SearchOrder) -> Self {
        match order {
            SearchOrder::Dfs => Frontier::Dfs(Vec::new()),
            SearchOrder::ShortestFirst => Frontier::Shortest {
                heap: BinaryHeap::new(),
                next_seq: 0,
            },
        }
    }

    fn push(&mut self, node: SearchNode, priority: usize) {
        match self {
            Frontier::Dfs(stack) => stack.push((node, priority)),
            Frontier::Shortest { heap, next_seq } => {
                heap.push(Reverse(HeapEntry {
                    priority,
                    seq: *next_seq,
                    node,
                }));
                *next_seq += 1;
            }
        }
    }

    /// Add a sibling group in its natural processing order: the stack gets
    /// them reversed (so the first sibling pops first), the heap in order (so
    /// equal-priority siblings pop FIFO).
    fn extend(&mut self, scored: Vec<(SearchNode, usize)>) {
        match self {
            Frontier::Dfs(stack) => stack.extend(scored.into_iter().rev()),
            Frontier::Shortest { .. } => {
                for (node, priority) in scored {
                    self.push(node, priority);
                }
            }
        }
    }

    fn pop(&mut self) -> Option<(SearchNode, usize)> {
        match self {
            Frontier::Dfs(stack) => stack.pop(),
            Frontier::Shortest { heap, .. } => heap
                .pop()
                .map(|Reverse(entry)| (entry.node, entry.priority)),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Frontier::Dfs(stack) => stack.is_empty(),
            Frontier::Shortest { heap, .. } => heap.is_empty(),
        }
    }

    /// Smallest priority still pending — only meaningful for the best-first
    /// frontier, where it bounds the size of every not-yet-emitted cover.
    fn min_priority(&self) -> Option<usize> {
        match self {
            Frontier::Dfs(_) => None,
            Frontier::Shortest { heap, .. } => heap.peek().map(|Reverse(entry)| entry.priority),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(m: usize) -> FixedBitSet {
        FixedBitSet::full(m)
    }

    #[test]
    fn first_strategy_picks_the_first_uncovered_subset() {
        // Pin the `BranchStrategy::First` semantics that the old MMCS
        // implementation obscured behind a shadowed match arm: the *first*
        // subset in `uncov` order wins regardless of intersection sizes.
        let sys = SetSystem::from_indices(5, &[&[0, 1, 2, 3], &[4], &[0, 4]]);
        let cand = full(5);
        let can_hit = full(3);
        let chosen = choose_branch_subset(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::First,
            true,
        );
        assert_eq!(chosen, Some(0));
        // A different uncov order changes the choice: First is order-driven.
        let chosen = choose_branch_subset(
            &sys,
            &[2, 1, 0],
            &cand,
            &can_hit,
            BranchStrategy::First,
            true,
        );
        assert_eq!(chosen, Some(2));
    }

    #[test]
    fn first_strategy_still_detects_fatal_unhittable_subsets() {
        // Exact enumeration must keep scanning past the chosen subset: an
        // unhittable subset later in the list kills the branch.
        let sys = SetSystem::from_indices(3, &[&[0, 1], &[2]]);
        let mut cand = full(3);
        cand.remove(2); // subset {2} can no longer be hit
        let chosen =
            choose_branch_subset(&sys, &[0, 1], &cand, &full(2), BranchStrategy::First, true);
        assert_eq!(chosen, None, "fatal unhittable subset must kill the branch");
    }

    #[test]
    fn first_strategy_non_fatal_stops_at_the_first_selectable_subset() {
        // Approximate enumeration: unhittable subsets are skipped via
        // `can_hit`, and the scan stops at the first live subset.
        let sys = SetSystem::from_indices(3, &[&[0], &[1], &[2]]);
        let mut can_hit = full(3);
        can_hit.remove(0);
        let chosen = choose_branch_subset(
            &sys,
            &[0, 1, 2],
            &full(3),
            &can_hit,
            BranchStrategy::First,
            false,
        );
        assert_eq!(chosen, Some(1), "first *live* subset wins");
    }

    #[test]
    fn non_fatal_mode_accepts_subsets_with_empty_intersection() {
        // The approximate enumerator may select a subset no candidate hits —
        // its skip branch then marks the subset unhittable. Preserved here.
        let sys = SetSystem::from_indices(2, &[&[0]]);
        let cand = FixedBitSet::new(2); // nothing left
        let chosen = choose_branch_subset(
            &sys,
            &[0],
            &cand,
            &full(1),
            BranchStrategy::MaxIntersection,
            false,
        );
        assert_eq!(chosen, Some(0));
    }

    #[test]
    fn max_and_min_strategies_pick_extremal_intersections() {
        let sys = SetSystem::from_indices(4, &[&[0], &[0, 1, 2], &[2, 3]]);
        let cand = full(4);
        let can_hit = full(3);
        let max = choose_branch_subset(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::MaxIntersection,
            true,
        );
        assert_eq!(max, Some(1));
        let min = choose_branch_subset(
            &sys,
            &[0, 1, 2],
            &cand,
            &can_hit,
            BranchStrategy::MinIntersection,
            true,
        );
        assert_eq!(min, Some(0));
    }

    #[test]
    fn disjoint_lower_bound_counts_a_disjoint_family() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[1, 2], &[3], &[4, 5]]);
        let uncov: Vec<usize> = (0..4).collect();
        // {0,1}, {3}, {4,5} are pairwise disjoint; {1,2} overlaps the first.
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &full(6)), 3);
        // Restricting candidates merges demands: without element 1 the first
        // two subsets reduce to {0} and {2}, still disjoint — bound 4.
        let mut cand = full(6);
        cand.remove(1);
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &cand), 4);
        // A subset with no remaining candidates contributes nothing.
        let mut cand = full(6);
        cand.remove(3);
        assert_eq!(greedy_disjoint_lower_bound(&sys, &uncov, &cand), 2);
    }

    #[test]
    fn budget_default_is_unlimited() {
        let budget = SearchBudget::default();
        assert!(budget.is_unlimited());
        let budget = budget
            .with_max_nodes(10)
            .with_deadline(Duration::from_secs(1))
            .with_max_emitted(5);
        assert!(!budget.is_unlimited());
        assert_eq!(budget.max_nodes, Some(10));
        assert_eq!(budget.max_emitted, Some(5));
    }
}
