//! Cover repair: rebuild the minimal-hitting-set answer of a *grown* or
//! *shrunk* set system from the previous answer instead of re-enumerating
//! from scratch.
//!
//! # Appended subsets — exact repair ([`repair_covers`])
//!
//! Let `F` be the old subsets, `T(F)` its complete set of minimal hitting
//! sets, and `A` the appended subsets. Every `τ ∈ T(F ∪ A)` decomposes as
//! `τ = σ ∪ ρ` where `σ ∈ T(F)` and `ρ ∈ T(A_σ)` for
//! `A_σ = { a ∈ A : a ∩ σ = ∅ }` (the appended subsets `σ` misses):
//! pick `σ ⊆ τ` minimal among the subsets of `τ` hitting `F`; then `τ \ σ`
//! hits `A_σ`, shrink it to a minimal `ρ`; `σ ∪ ρ ⊆ τ` hits `F ∪ A`, and
//! minimality of `τ` forces equality. So enumerating `T(A_σ)` per old cover
//! and keeping the candidates that are minimal for the grown system
//! re-creates `T(F ∪ A)` exactly — touching only the covers that actually
//! miss an appended subset. Old covers with `A_σ = ∅` are *provably* still
//! minimal (appending subsets never un-minimalises a set that still hits
//! everything) and are kept without a check.
//!
//! This is **exact only when the input is the complete `T(F)`** — a cover
//! missing from the input can be missing from the output. Truncated runs
//! must restart instead (or continue via [`crate::SuspendedSearch::patch`],
//! which is sound but inherits the truncation).
//!
//! # Removed subsets — exact repair by locality ([`repair_covers_removal`])
//!
//! Removing subsets can create minimal covers that are **not** unions or
//! subsets of old ones. Witness `F = {{1,3}, {2,3}, {3}}` with
//! `T(F) = {{3}}`: removing `{3}` gives `T(F') = {{3}, {1,2}}`, and `{1,2}`
//! is not derivable from `{3}` by shrinking. [`shrink_covers`] alone is
//! therefore only *sound* (every output is a minimal hitting set of the new
//! system), never complete.
//!
//! But the covers shrinking cannot reach are **localisable**. Let `F'` be
//! the surviving subsets and `R₁,…,Rₖ` the removed ones, and take any
//! `τ ∈ T(F')`:
//!
//! - if `τ` still hits *every* removed `Rᵢ`, it hits all of `F = F' ∪ {Rᵢ}`,
//!   so it contains some `σ ∈ T(F)`; `σ` hits `F' ⊆ F`, and minimality of
//!   `τ` for `F'` forces `τ = σ` — the cover was already in the old answer
//!   and survives re-minimalisation unchanged;
//! - otherwise `τ ∩ Rᵢ = ∅` for some removed `Rᵢ`, i.e.
//!   `τ ⊆ complement(Rᵢ)` — exactly what one search run confined to
//!   `complement(Rᵢ)` ([`search_minimal_hitting_sets_within`]) enumerates.
//!
//! So `T(F')` = {re-minimalised old covers} ∪ ⋃ᵢ {confined run for `Rᵢ`},
//! and [`repair_covers_removal`] recovers the complete new answer with one
//! greedy shrink pass plus `k` *local* enumerations whose roots already
//! exclude every element of the corresponding removed entry — no
//! full-frontier restart. In the witness above, the confined run for
//! `R = {3}` searches within `{0,1,2}` and recovers precisely `{1,2}`.
//!
//! Like append repair, this is **exact only when the input is the complete
//! `T(F)`** — truncated runs must restart.

#![doc = "conformance: ordered-output"]

use crate::mmcs::{search_minimal_hitting_sets, search_minimal_hitting_sets_within};
use crate::search::{SearchBudget, SearchOrder};
use crate::{BranchStrategy, SetSystem};
use adc_data::fx::FxHashSet;
use adc_data::FixedBitSet;
use std::ops::Range;

/// Statistics of one [`repair_covers`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverRepair {
    /// Old covers that hit every appended subset and were kept as-is.
    pub kept: usize,
    /// Old covers that missed at least one appended subset and were
    /// re-opened (their `T(A_σ)` enumerated).
    pub reopened: usize,
    /// Surviving covers that are proper extensions of a re-opened old cover
    /// (i.e. genuinely new answers).
    pub discovered: usize,
    /// Candidate extensions discarded by the minimality filter.
    pub rejected: usize,
    /// Search-tree nodes expanded across all per-cover sub-enumerations —
    /// directly comparable with [`SearchOutcome::nodes_expanded`] of a
    /// from-scratch restart.
    ///
    /// [`SearchOutcome::nodes_expanded`]: crate::SearchOutcome::nodes_expanded
    pub nodes_expanded: u64,
}

/// Statistics of one [`repair_covers_removal`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemovalRepair {
    /// Old covers that were still minimal for the shrunk system and were
    /// kept unchanged.
    pub survivors: usize,
    /// Old covers that stopped being minimal and were re-minimalised to a
    /// proper subset by the greedy shrink pass.
    pub shrunk: usize,
    /// Confined enumeration runs performed (one per removed subset).
    pub scopes: usize,
    /// Covers found by the confined runs that were not reachable by
    /// shrinking an old cover (genuinely new answers).
    pub discovered: usize,
    /// Confined-run emissions discarded as duplicates of an already-known
    /// cover.
    pub rejected: usize,
    /// Search-tree nodes expanded across all confined runs — directly
    /// comparable with [`SearchOutcome::nodes_expanded`] of a from-scratch
    /// restart.
    ///
    /// [`SearchOutcome::nodes_expanded`]: crate::SearchOutcome::nodes_expanded
    pub nodes_expanded: u64,
}

/// Repair a **complete** minimal-hitting-set answer after subsets were
/// appended to the system.
///
/// `old_covers` must be *all* minimal hitting sets of the system made of
/// `system.subsets()[..appended.start]`; `appended` is the index range of
/// the subsets appended since (`appended.end == system.len()`). Returns the
/// complete answer for the grown system, deduplicated, in a deterministic
/// order (kept/extended covers in `old_covers` order, extensions of one
/// cover in enumeration order), plus repair statistics.
///
/// # Panics
/// Panics if `appended` is not a suffix of the system's subset range.
pub fn repair_covers(
    old_covers: &[FixedBitSet],
    system: &SetSystem,
    appended: Range<usize>,
    strategy: BranchStrategy,
) -> (Vec<FixedBitSet>, CoverRepair) {
    assert!(
        appended.start <= appended.end && appended.end == system.len(),
        "appended range {appended:?} is not a suffix of the {}-subset system",
        system.len()
    );
    let m = system.num_elements();
    let mut out: Vec<FixedBitSet> = Vec::new();
    let mut seen: FxHashSet<FixedBitSet> = FxHashSet::default();
    let mut stats = CoverRepair::default();

    for sigma in old_covers {
        let missed: Vec<&FixedBitSet> = system.subsets()[appended.clone()]
            .iter()
            .filter(|a| !a.intersects(sigma))
            .collect();
        if missed.is_empty() {
            // σ still hits everything, and appending subsets cannot make a
            // minimal cover non-minimal: removing any element un-hits some
            // old subset, which is still in the system.
            debug_assert!(system.is_minimal_hitting_set(sigma));
            stats.kept += 1;
            if seen.insert(sigma.clone()) {
                out.push(sigma.clone());
            }
            continue;
        }
        stats.reopened += 1;
        // Enumerate T(A_σ) over the same element universe and graft each ρ
        // onto σ; the minimality filter against the *full* grown system
        // rejects the grafts that some other σ' already covers more cheaply.
        let sub = SetSystem::new(m, missed.into_iter().cloned().collect());
        let outcome = search_minimal_hitting_sets(
            &sub,
            strategy,
            SearchOrder::Dfs,
            SearchBudget::unlimited(),
            &mut |rho: &FixedBitSet| {
                let mut candidate = sigma.clone();
                candidate.union_with(rho);
                if system.is_minimal_hitting_set(&candidate) {
                    stats.discovered += 1;
                    if seen.insert(candidate.clone()) {
                        out.push(candidate);
                    }
                } else {
                    stats.rejected += 1;
                }
                true
            },
        );
        stats.nodes_expanded += outcome.nodes_expanded;
    }
    (out, stats)
}

/// Repair a **complete** minimal-hitting-set answer after subsets were
/// removed from the system.
///
/// `old_covers` must be *all* minimal hitting sets of the system that
/// consisted of `system.subsets()` **plus** the subsets in `removed` (each a
/// bitmask over the same element universe). Returns the complete answer for
/// the shrunk system, deduplicated, in a deterministic order (re-minimalised
/// old covers in `old_covers` order, then discoveries per removed subset in
/// `removed` order and enumeration order within each), plus repair
/// statistics.
///
/// The repair is *local*: beyond the greedy shrink pass, it runs one search
/// confined to `complement(Rᵢ)` per removed subset `Rᵢ` — see the module
/// docs for why those confined runs recover exactly the covers shrinking
/// cannot reach. Removed subsets whose complement is everything (empty
/// masks) still get a scope; callers should drop masks that are no longer
/// genuinely absent from the system before calling.
///
/// # Panics
/// Panics (in debug builds) if a removed mask's capacity differs from the
/// system's element count.
pub fn repair_covers_removal(
    old_covers: &[FixedBitSet],
    system: &SetSystem,
    removed: &[FixedBitSet],
    strategy: BranchStrategy,
) -> (Vec<FixedBitSet>, RemovalRepair) {
    let mut out: Vec<FixedBitSet> = Vec::new();
    let mut seen: FxHashSet<FixedBitSet> = FxHashSet::default();
    let mut stats = RemovalRepair::default();

    // Phase 1: re-minimalise the survivors. Under a pure shrink every old
    // cover still hits the remaining subsets; what it can lose is
    // *minimality* (an element kept only to hit a removed subset becomes
    // droppable).
    for cover in old_covers {
        debug_assert!(
            system.is_hitting_set(cover),
            "old cover stopped hitting a shrunk system — the input was not \
             the answer of a superset family"
        );
        let mut shrunk = cover.clone();
        for e in cover.iter() {
            shrunk.remove(e);
            if !system.is_hitting_set(&shrunk) {
                shrunk.insert(e);
            }
        }
        debug_assert!(system.is_minimal_hitting_set(&shrunk));
        if shrunk.len() == cover.len() {
            stats.survivors += 1;
        } else {
            stats.shrunk += 1;
        }
        if seen.insert(shrunk.clone()) {
            out.push(shrunk);
        }
    }

    // Phase 2: one confined enumeration per removed subset. Every new
    // minimal cover misses some removed R (else it would contain — hence
    // equal — an old cover), so searching within complement(R) per R
    // recovers all of them.
    for mask in removed {
        debug_assert_eq!(mask.capacity(), system.num_elements());
        stats.scopes += 1;
        let allowed = mask.complement();
        let outcome = search_minimal_hitting_sets_within(
            system,
            &allowed,
            strategy,
            &mut |tau: &FixedBitSet| {
                if seen.insert(tau.clone()) {
                    stats.discovered += 1;
                    out.push(tau.clone());
                } else {
                    stats.rejected += 1;
                }
                true
            },
        );
        stats.nodes_expanded += outcome.nodes_expanded;
    }
    (out, stats)
}

/// Greedily re-minimise covers after subsets were removed from the system.
///
/// Every returned set is a minimal hitting set of `system` (elements are
/// dropped in ascending order while the set keeps hitting everything — a
/// single ascending pass suffices: an element kept because its removal broke
/// coverage stays necessary as the set only shrinks further). Duplicates
/// produced by different inputs shrinking to the same cover are removed,
/// first occurrence wins.
///
/// **Sound, not complete**: see the module docs for why no repair from old
/// covers can be complete under removals.
pub fn shrink_covers(covers: &[FixedBitSet], system: &SetSystem) -> Vec<FixedBitSet> {
    let mut out: Vec<FixedBitSet> = Vec::new();
    let mut seen: FxHashSet<FixedBitSet> = FxHashSet::default();
    for cover in covers {
        if !system.is_hitting_set(cover) {
            // A cover can stop hitting only if the caller's system is not a
            // pure shrink of the one the cover was mined on; skip it.
            continue;
        }
        let mut shrunk = cover.clone();
        for e in cover.iter() {
            shrunk.remove(e);
            if !system.is_hitting_set(&shrunk) {
                shrunk.insert(e);
            }
        }
        debug_assert!(system.is_minimal_hitting_set(&shrunk));
        if seen.insert(shrunk.clone()) {
            out.push(shrunk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_minimal_hitting_sets;
    use crate::mmcs::minimal_hitting_sets;

    fn as_sorted_vecs(sets: &[FixedBitSet]) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.iter().map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn repair_matches_full_reenumeration() {
        let old = SetSystem::from_indices(5, &[&[0, 1], &[1, 2]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        let mut grown = old.clone();
        grown.push_subset(FixedBitSet::from_indices(5, [3, 4]));
        grown.push_subset(FixedBitSet::from_indices(5, [1, 4]));
        let (repaired, stats) = repair_covers(&covers, &grown, 2..4, BranchStrategy::default());
        let expected = brute_force_minimal_hitting_sets(&grown);
        assert_eq!(as_sorted_vecs(&repaired), as_sorted_vecs(&expected));
        assert_eq!(stats.kept + stats.reopened, covers.len());
        assert!(stats.reopened > 0);
    }

    #[test]
    fn repair_with_no_appended_subsets_is_identity() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[2, 3]]);
        let covers = minimal_hitting_sets(&sys, BranchStrategy::default());
        let n = sys.len();
        let (repaired, stats) = repair_covers(&covers, &sys, n..n, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), as_sorted_vecs(&covers));
        assert_eq!(stats.kept, covers.len());
        assert_eq!(stats.reopened, 0);
        assert_eq!(stats.discovered, 0);
    }

    #[test]
    fn repair_from_empty_system() {
        // T(∅) = {∅}: growing from nothing behaves like a fresh enumeration.
        let mut sys = SetSystem::new(3, Vec::new());
        let covers = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(covers.len(), 1);
        assert!(covers[0].is_empty());
        sys.push_subset(FixedBitSet::from_indices(3, [0, 2]));
        let (repaired, _) = repair_covers(&covers, &sys, 0..1, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), vec![vec![0], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "not a suffix")]
    fn repair_rejects_non_suffix_range() {
        let sys = SetSystem::from_indices(3, &[&[0], &[1]]);
        repair_covers(&[], &sys, 0..1, BranchStrategy::default());
    }

    #[test]
    fn shrink_is_sound_and_shows_the_incompleteness_witness() {
        // F = {{1,3},{2,3},{3}} over elements 0..4 → T(F) = {{3}}.
        let old = SetSystem::from_indices(4, &[&[1, 3], &[2, 3], &[3]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&covers), vec![vec![3]]);
        // Remove {3}: the true answer gains {1,2}, which no shrink of {3}
        // can produce — shrink stays sound but incomplete.
        let shrunk_sys = SetSystem::from_indices(4, &[&[1, 3], &[2, 3]]);
        let shrunk = shrink_covers(&covers, &shrunk_sys);
        for s in &shrunk {
            assert!(shrunk_sys.is_minimal_hitting_set(s));
        }
        assert_eq!(as_sorted_vecs(&shrunk), vec![vec![3]]);
        let full = as_sorted_vecs(&brute_force_minimal_hitting_sets(&shrunk_sys));
        assert_eq!(full, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn shrink_reminimises_and_dedups() {
        let sys = SetSystem::from_indices(4, &[&[0, 1]]);
        let fat = vec![
            FixedBitSet::from_indices(4, [0, 2]),
            FixedBitSet::from_indices(4, [0, 3]),
            FixedBitSet::from_indices(4, [1]),
        ];
        let shrunk = shrink_covers(&fat, &sys);
        assert_eq!(as_sorted_vecs(&shrunk), vec![vec![0], vec![1]]);
    }

    #[test]
    fn removal_repair_recovers_the_incompleteness_witness() {
        // Same witness as above: removing {3} from F = {{1,3},{2,3},{3}}
        // creates {1,2}, unreachable by shrinking {3}. The confined run for
        // the removed mask searches within {0,1,2} and recovers it.
        let old = SetSystem::from_indices(4, &[&[1, 3], &[2, 3], &[3]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        let shrunk_sys = SetSystem::from_indices(4, &[&[1, 3], &[2, 3]]);
        let removed = vec![FixedBitSet::from_indices(4, [3])];
        let (repaired, stats) =
            repair_covers_removal(&covers, &shrunk_sys, &removed, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), vec![vec![1, 2], vec![3]]);
        assert_eq!(stats.survivors, 1); // {3} is still minimal
        assert_eq!(stats.shrunk, 0);
        assert_eq!(stats.scopes, 1);
        assert_eq!(stats.discovered, 1); // {1,2}
        assert!(stats.nodes_expanded > 0);
    }

    #[test]
    fn removal_repair_reminimalises_covers_that_lost_their_reason() {
        // F = {{0},{1,2}} → T = {{0,1},{0,2}}. Removing {0} makes both
        // non-minimal; they shrink to {1} and {2}, and the confined run for
        // {0}'s complement {1,2,3} rediscovers only those same covers.
        let old = SetSystem::from_indices(4, &[&[0], &[1, 2]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&covers), vec![vec![0, 1], vec![0, 2]]);
        let shrunk_sys = SetSystem::from_indices(4, &[&[1, 2]]);
        let removed = vec![FixedBitSet::from_indices(4, [0])];
        let (repaired, stats) =
            repair_covers_removal(&covers, &shrunk_sys, &removed, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), vec![vec![1], vec![2]]);
        assert_eq!(stats.survivors, 0);
        assert_eq!(stats.shrunk, 2);
        assert_eq!(stats.discovered, 0);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn removal_repair_with_no_removals_is_the_identity() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[2, 3]]);
        let covers = minimal_hitting_sets(&sys, BranchStrategy::default());
        let (repaired, stats) =
            repair_covers_removal(&covers, &sys, &[], BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), as_sorted_vecs(&covers));
        assert_eq!(stats.survivors, covers.len());
        assert_eq!(stats.shrunk, 0);
        assert_eq!(stats.scopes, 0);
        assert_eq!(stats.nodes_expanded, 0);
    }

    #[test]
    fn removal_repair_down_to_the_empty_system_yields_the_empty_cover() {
        // T(∅) = {∅}: every old cover shrinks all the way to ∅.
        let old = SetSystem::from_indices(3, &[&[0, 1]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        let empty_sys = SetSystem::new(3, Vec::new());
        let removed = vec![FixedBitSet::from_indices(3, [0, 1])];
        let (repaired, _) =
            repair_covers_removal(&covers, &empty_sys, &removed, BranchStrategy::default());
        assert_eq!(repaired.len(), 1);
        assert!(repaired[0].is_empty());
    }

    #[test]
    fn removal_repair_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2020);
        for round in 0..60 {
            let m = rng.gen_range(3..9);
            let k = rng.gen_range(1..8);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let old_sys = SetSystem::new(m, subsets.clone());
            let old_covers = minimal_hitting_sets(&old_sys, BranchStrategy::default());
            // Remove a random (sometimes total) slice of the family.
            let keep: Vec<bool> = (0..k).map(|_| rng.gen_bool(0.5)).collect();
            let survivors: Vec<FixedBitSet> = subsets
                .iter()
                .zip(&keep)
                .filter(|(_, &kept)| kept)
                .map(|(s, _)| s.clone())
                .collect();
            let removed: Vec<FixedBitSet> = subsets
                .iter()
                .zip(&keep)
                .filter(|(_, &kept)| !kept)
                .map(|(s, _)| s.clone())
                .collect();
            let new_sys = SetSystem::new(m, survivors);
            let (repaired, stats) =
                repair_covers_removal(&old_covers, &new_sys, &removed, BranchStrategy::default());
            let expected = brute_force_minimal_hitting_sets(&new_sys);
            assert_eq!(
                as_sorted_vecs(&repaired),
                as_sorted_vecs(&expected),
                "round {round}: repair diverged from brute force"
            );
            assert_eq!(stats.survivors + stats.shrunk, old_covers.len());
            assert_eq!(stats.scopes, removed.len());
        }
    }
}
