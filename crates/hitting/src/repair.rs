//! Cover repair: rebuild the minimal-hitting-set answer of a *grown* or
//! *shrunk* set system from the previous answer instead of re-enumerating
//! from scratch.
//!
//! # Appended subsets — exact repair ([`repair_covers`])
//!
//! Let `F` be the old subsets, `T(F)` its complete set of minimal hitting
//! sets, and `A` the appended subsets. Every `τ ∈ T(F ∪ A)` decomposes as
//! `τ = σ ∪ ρ` where `σ ∈ T(F)` and `ρ ∈ T(A_σ)` for
//! `A_σ = { a ∈ A : a ∩ σ = ∅ }` (the appended subsets `σ` misses):
//! pick `σ ⊆ τ` minimal among the subsets of `τ` hitting `F`; then `τ \ σ`
//! hits `A_σ`, shrink it to a minimal `ρ`; `σ ∪ ρ ⊆ τ` hits `F ∪ A`, and
//! minimality of `τ` forces equality. So enumerating `T(A_σ)` per old cover
//! and keeping the candidates that are minimal for the grown system
//! re-creates `T(F ∪ A)` exactly — touching only the covers that actually
//! miss an appended subset. Old covers with `A_σ = ∅` are *provably* still
//! minimal (appending subsets never un-minimalises a set that still hits
//! everything) and are kept without a check.
//!
//! This is **exact only when the input is the complete `T(F)`** — a cover
//! missing from the input can be missing from the output. Truncated runs
//! must restart instead (or continue via [`crate::SuspendedSearch::patch`],
//! which is sound but inherits the truncation).
//!
//! # Removed subsets — no exact repair exists ([`shrink_covers`])
//!
//! Removing subsets can create minimal covers that are **not** unions or
//! subsets of old ones. Witness `F = {{1,3}, {2,3}, {3}}` with
//! `T(F) = {{3}}`: removing `{3}` gives `T(F') = {{3}, {1,2}}`, and `{1,2}`
//! is not derivable from `{3}` by shrinking. [`shrink_covers`] therefore
//! only guarantees *soundness* (every output is a minimal hitting set of the
//! new system); completeness requires a restart. The streaming monitor in
//! `adc-core` restarts on any removal for exactly this reason.

use crate::mmcs::enumerate_minimal_hitting_sets;
use crate::{BranchStrategy, SetSystem};
use adc_data::fx::FxHashSet;
use adc_data::FixedBitSet;
use std::ops::Range;

/// Statistics of one [`repair_covers`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverRepair {
    /// Old covers that hit every appended subset and were kept as-is.
    pub kept: usize,
    /// Old covers that missed at least one appended subset and were
    /// re-opened (their `T(A_σ)` enumerated).
    pub reopened: usize,
    /// Surviving covers that are proper extensions of a re-opened old cover
    /// (i.e. genuinely new answers).
    pub discovered: usize,
    /// Candidate extensions discarded by the minimality filter.
    pub rejected: usize,
}

/// Repair a **complete** minimal-hitting-set answer after subsets were
/// appended to the system.
///
/// `old_covers` must be *all* minimal hitting sets of the system made of
/// `system.subsets()[..appended.start]`; `appended` is the index range of
/// the subsets appended since (`appended.end == system.len()`). Returns the
/// complete answer for the grown system, deduplicated, in a deterministic
/// order (kept/extended covers in `old_covers` order, extensions of one
/// cover in enumeration order), plus repair statistics.
///
/// # Panics
/// Panics if `appended` is not a suffix of the system's subset range.
pub fn repair_covers(
    old_covers: &[FixedBitSet],
    system: &SetSystem,
    appended: Range<usize>,
    strategy: BranchStrategy,
) -> (Vec<FixedBitSet>, CoverRepair) {
    assert!(
        appended.start <= appended.end && appended.end == system.len(),
        "appended range {appended:?} is not a suffix of the {}-subset system",
        system.len()
    );
    let m = system.num_elements();
    let mut out: Vec<FixedBitSet> = Vec::new();
    let mut seen: FxHashSet<FixedBitSet> = FxHashSet::default();
    let mut stats = CoverRepair::default();

    for sigma in old_covers {
        let missed: Vec<&FixedBitSet> = system.subsets()[appended.clone()]
            .iter()
            .filter(|a| !a.intersects(sigma))
            .collect();
        if missed.is_empty() {
            // σ still hits everything, and appending subsets cannot make a
            // minimal cover non-minimal: removing any element un-hits some
            // old subset, which is still in the system.
            debug_assert!(system.is_minimal_hitting_set(sigma));
            stats.kept += 1;
            if seen.insert(sigma.clone()) {
                out.push(sigma.clone());
            }
            continue;
        }
        stats.reopened += 1;
        // Enumerate T(A_σ) over the same element universe and graft each ρ
        // onto σ; the minimality filter against the *full* grown system
        // rejects the grafts that some other σ' already covers more cheaply.
        let sub = SetSystem::new(m, missed.into_iter().cloned().collect());
        enumerate_minimal_hitting_sets(&sub, strategy, |rho| {
            let mut candidate = sigma.clone();
            candidate.union_with(rho);
            if system.is_minimal_hitting_set(&candidate) {
                stats.discovered += 1;
                if seen.insert(candidate.clone()) {
                    out.push(candidate);
                }
            } else {
                stats.rejected += 1;
            }
            true
        });
    }
    (out, stats)
}

/// Greedily re-minimise covers after subsets were removed from the system.
///
/// Every returned set is a minimal hitting set of `system` (elements are
/// dropped in ascending order while the set keeps hitting everything — a
/// single ascending pass suffices: an element kept because its removal broke
/// coverage stays necessary as the set only shrinks further). Duplicates
/// produced by different inputs shrinking to the same cover are removed,
/// first occurrence wins.
///
/// **Sound, not complete**: see the module docs for why no repair from old
/// covers can be complete under removals.
pub fn shrink_covers(covers: &[FixedBitSet], system: &SetSystem) -> Vec<FixedBitSet> {
    let mut out: Vec<FixedBitSet> = Vec::new();
    let mut seen: FxHashSet<FixedBitSet> = FxHashSet::default();
    for cover in covers {
        if !system.is_hitting_set(cover) {
            // A cover can stop hitting only if the caller's system is not a
            // pure shrink of the one the cover was mined on; skip it.
            continue;
        }
        let mut shrunk = cover.clone();
        for e in cover.iter() {
            shrunk.remove(e);
            if !system.is_hitting_set(&shrunk) {
                shrunk.insert(e);
            }
        }
        debug_assert!(system.is_minimal_hitting_set(&shrunk));
        if seen.insert(shrunk.clone()) {
            out.push(shrunk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_minimal_hitting_sets;
    use crate::mmcs::minimal_hitting_sets;

    fn as_sorted_vecs(sets: &[FixedBitSet]) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.iter().map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn repair_matches_full_reenumeration() {
        let old = SetSystem::from_indices(5, &[&[0, 1], &[1, 2]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        let mut grown = old.clone();
        grown.push_subset(FixedBitSet::from_indices(5, [3, 4]));
        grown.push_subset(FixedBitSet::from_indices(5, [1, 4]));
        let (repaired, stats) = repair_covers(&covers, &grown, 2..4, BranchStrategy::default());
        let expected = brute_force_minimal_hitting_sets(&grown);
        assert_eq!(as_sorted_vecs(&repaired), as_sorted_vecs(&expected));
        assert_eq!(stats.kept + stats.reopened, covers.len());
        assert!(stats.reopened > 0);
    }

    #[test]
    fn repair_with_no_appended_subsets_is_identity() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[2, 3]]);
        let covers = minimal_hitting_sets(&sys, BranchStrategy::default());
        let n = sys.len();
        let (repaired, stats) = repair_covers(&covers, &sys, n..n, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), as_sorted_vecs(&covers));
        assert_eq!(stats.kept, covers.len());
        assert_eq!(stats.reopened, 0);
        assert_eq!(stats.discovered, 0);
    }

    #[test]
    fn repair_from_empty_system() {
        // T(∅) = {∅}: growing from nothing behaves like a fresh enumeration.
        let mut sys = SetSystem::new(3, Vec::new());
        let covers = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(covers.len(), 1);
        assert!(covers[0].is_empty());
        sys.push_subset(FixedBitSet::from_indices(3, [0, 2]));
        let (repaired, _) = repair_covers(&covers, &sys, 0..1, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&repaired), vec![vec![0], vec![2]]);
    }

    #[test]
    #[should_panic(expected = "not a suffix")]
    fn repair_rejects_non_suffix_range() {
        let sys = SetSystem::from_indices(3, &[&[0], &[1]]);
        repair_covers(&[], &sys, 0..1, BranchStrategy::default());
    }

    #[test]
    fn shrink_is_sound_and_shows_the_incompleteness_witness() {
        // F = {{1,3},{2,3},{3}} over elements 0..4 → T(F) = {{3}}.
        let old = SetSystem::from_indices(4, &[&[1, 3], &[2, 3], &[3]]);
        let covers = minimal_hitting_sets(&old, BranchStrategy::default());
        assert_eq!(as_sorted_vecs(&covers), vec![vec![3]]);
        // Remove {3}: the true answer gains {1,2}, which no shrink of {3}
        // can produce — shrink stays sound but incomplete.
        let shrunk_sys = SetSystem::from_indices(4, &[&[1, 3], &[2, 3]]);
        let shrunk = shrink_covers(&covers, &shrunk_sys);
        for s in &shrunk {
            assert!(shrunk_sys.is_minimal_hitting_set(s));
        }
        assert_eq!(as_sorted_vecs(&shrunk), vec![vec![3]]);
        let full = as_sorted_vecs(&brute_force_minimal_hitting_sets(&shrunk_sys));
        assert_eq!(full, vec![vec![1, 2], vec![3]]);
    }

    #[test]
    fn shrink_reminimises_and_dedups() {
        let sys = SetSystem::from_indices(4, &[&[0, 1]]);
        let fat = vec![
            FixedBitSet::from_indices(4, [0, 2]),
            FixedBitSet::from_indices(4, [0, 3]),
            FixedBitSet::from_indices(4, [1]),
        ];
        let shrunk = shrink_covers(&fat, &sys);
        assert_eq!(as_sorted_vecs(&shrunk), vec![vec![0], vec![1]]);
    }
}
