//! Brute-force reference enumerators, used to validate MMCS and the
//! approximate enumerator on small instances (tests and property tests).
//!
//! These are exponential in the number of elements and intended only for
//! universes of at most ~20 elements.

use crate::SetSystem;
use adc_data::FixedBitSet;

/// All minimal hitting sets of `system`, by exhaustive subset enumeration.
///
/// # Panics
/// Panics if the universe has more than 22 elements (the enumeration would
/// be astronomically large); use MMCS for real instances.
pub fn brute_force_minimal_hitting_sets(system: &SetSystem) -> Vec<FixedBitSet> {
    let m = system.num_elements();
    assert!(
        m <= 22,
        "brute force limited to small universes, got {m} elements"
    );
    let mut hitting: Vec<FixedBitSet> = Vec::new();
    for mask in 0u64..(1u64 << m) {
        let set = FixedBitSet::from_words(m, &[mask]);
        if system.is_hitting_set(&set) {
            hitting.push(set);
        }
    }
    keep_minimal(hitting)
}

/// All minimal *approximate* hitting sets: sets `X` with `1 − score(X) ≤ ε`
/// such that no proper subset satisfies the same condition.
///
/// # Panics
/// Panics if the universe has more than 22 elements.
pub fn brute_force_minimal_approx_hitting_sets<F>(
    num_elements: usize,
    score: F,
    epsilon: f64,
) -> Vec<FixedBitSet>
where
    F: Fn(&FixedBitSet) -> f64,
{
    assert!(
        num_elements <= 22,
        "brute force limited to small universes, got {num_elements} elements"
    );
    let mut approx: Vec<FixedBitSet> = Vec::new();
    for mask in 0u64..(1u64 << num_elements) {
        let set = FixedBitSet::from_words(num_elements, &[mask]);
        if 1.0 - score(&set) <= epsilon {
            approx.push(set);
        }
    }
    keep_minimal(approx)
}

/// Filter a family down to its inclusion-minimal members.
pub fn keep_minimal(sets: Vec<FixedBitSet>) -> Vec<FixedBitSet> {
    let mut minimal = Vec::new();
    'outer: for (i, s) in sets.iter().enumerate() {
        for (j, t) in sets.iter().enumerate() {
            if i != j && t.is_proper_subset(s) {
                continue 'outer;
            }
        }
        minimal.push(s.clone());
    }
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_simple_instance() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let mut found: Vec<Vec<usize>> = brute_force_minimal_hitting_sets(&sys)
            .iter()
            .map(|s| s.to_vec())
            .collect();
        found.sort();
        assert_eq!(found, vec![vec![0, 2], vec![1, 2], vec![1, 3]]);
    }

    #[test]
    fn keep_minimal_removes_supersets() {
        let sets = vec![
            FixedBitSet::from_indices(4, [0]),
            FixedBitSet::from_indices(4, [0, 1]),
            FixedBitSet::from_indices(4, [2, 3]),
        ];
        let min = keep_minimal(sets);
        assert_eq!(min.len(), 2);
        assert!(min.iter().any(|s| s.to_vec() == vec![0]));
        assert!(min.iter().any(|s| s.to_vec() == vec![2, 3]));
    }

    #[test]
    fn keep_minimal_preserves_duplicates_but_not_supersets() {
        // Equal sets are not proper subsets of each other, so both survive;
        // callers that intern their inputs never hit this case.
        let sets = vec![
            FixedBitSet::from_indices(3, [1]),
            FixedBitSet::from_indices(3, [1]),
        ];
        assert_eq!(keep_minimal(sets).len(), 2);
    }

    #[test]
    fn approx_brute_force_with_counting_score() {
        // Score = fraction of subsets hit; epsilon allows missing one of three.
        let sys = SetSystem::from_indices(4, &[&[0], &[1], &[2, 3]]);
        let score = |s: &FixedBitSet| {
            sys.subsets().iter().filter(|f| f.intersects(s)).count() as f64 / sys.len() as f64
        };
        // ε slightly above 1/3 to stay clear of floating-point equality at the boundary.
        let found = brute_force_minimal_approx_hitting_sets(4, score, 0.34);
        // Any pair covering two of the three subsets is minimal: {0,1}, {0,2}, {0,3}, {1,2}, {1,3}.
        let mut as_vecs: Vec<Vec<usize>> = found.iter().map(|s| s.to_vec()).collect();
        as_vecs.sort();
        assert_eq!(
            as_vecs,
            vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![1, 2], vec![1, 3]]
        );
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn large_universe_rejected() {
        let sys = SetSystem::from_indices(23, &[&[0]]);
        brute_force_minimal_hitting_sets(&sys);
    }
}
