//! # adc-hitting
//!
//! Minimal hitting-set enumeration (MMCS, Murakami & Uno 2014) and the
//! *approximate* minimal hitting-set enumeration at the core of `ADCEnum`
//! (Section 6 of the VLDB 2020 ADC paper).
//!
//! The hitting-set problem: given elements `0..m` and a family of subsets,
//! find all inclusion-minimal element sets intersecting every subset. The
//! approximate variant replaces "intersects every subset" with a threshold
//! on an arbitrary scoring function `f` supplied by the caller: a set `X` is
//! an *approximate hitting set* when `1 − f(X) ≤ ε`, and the goal is to
//! enumerate all the minimal ones.
//!
//! The paper reduces ADC discovery to exactly this problem (elements =
//! predicates, subsets = distinct evidence sets, `f` = approximation
//! function), but as the paper notes the algorithm is independent of that
//! application — this crate depends only on `adc-data` for its bitset and can
//! be used for any hypergraph-transversal-style workload.
//!
//! ```
//! use adc_hitting::{enumerate_minimal_hitting_sets, BranchStrategy, SetSystem};
//!
//! // The path hypergraph {0,1}, {1,2}, {2,3} has three minimal transversals.
//! let system = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
//! let mut found = Vec::new();
//! enumerate_minimal_hitting_sets(&system, BranchStrategy::MinIntersection, |hs| {
//!     found.push(hs.to_vec());
//!     true // keep enumerating
//! });
//! found.sort();
//! assert_eq!(found, vec![vec![0, 2], vec![1, 2], vec![1, 3]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod brute;
pub mod mmcs;
pub mod repair;
pub mod search;

pub use approx::{
    approx_minimal_hitting_sets, enumerate_approx_minimal_hitting_sets, patch_approx_search,
    resume_approx_minimal_hitting_sets, search_approx_minimal_hitting_sets,
    search_approx_minimal_hitting_sets_resumable, ApproxEnumConfig, ApproxEnumStats,
};
pub use mmcs::{
    enumerate_minimal_hitting_sets, minimal_hitting_sets, patch_minimal_hitting_search,
    resume_minimal_hitting_sets, search_minimal_hitting_sets,
    search_minimal_hitting_sets_resumable, search_minimal_hitting_sets_within,
};
pub use repair::{repair_covers, repair_covers_removal, shrink_covers, CoverRepair, RemovalRepair};
pub use search::{
    SearchBudget, SearchDriver, SearchOrder, SearchOutcome, SuspendedSearch, Truncation,
    TruncationReason,
};

use adc_data::FixedBitSet;

/// How the next uncovered subset to "hit" is selected.
///
/// Murakami & Uno suggest the subset with the **minimum** intersection with
/// the candidate list; the ADC paper found the **maximum** intersection to be
/// faster for approximate enumeration (Figure 10) because it shrinks the
/// candidate list faster for the non-hitting branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BranchStrategy {
    /// Select the uncovered subset maximising `|F ∩ cand|` (paper default).
    #[default]
    MaxIntersection,
    /// Select the uncovered subset minimising `|F ∩ cand|` (Murakami & Uno).
    MinIntersection,
    /// Select the first selectable uncovered subset (baseline for ablations).
    First,
}

impl BranchStrategy {
    /// Short label used in benchmark reports.
    pub fn label(self) -> &'static str {
        match self {
            BranchStrategy::MaxIntersection => "max-intersection",
            BranchStrategy::MinIntersection => "min-intersection",
            BranchStrategy::First => "first",
        }
    }
}

/// A hitting-set problem instance: subsets over the element universe
/// `0..num_elements`.
#[derive(Debug, Clone)]
pub struct SetSystem {
    num_elements: usize,
    subsets: Vec<FixedBitSet>,
}

impl SetSystem {
    /// Create a set system.
    ///
    /// # Panics
    /// Panics if any subset's capacity differs from `num_elements`.
    pub fn new(num_elements: usize, subsets: Vec<FixedBitSet>) -> Self {
        for s in &subsets {
            assert_eq!(s.capacity(), num_elements, "subset capacity mismatch");
        }
        SetSystem {
            num_elements,
            subsets,
        }
    }

    /// Build from explicit index lists (convenient in tests).
    pub fn from_indices(num_elements: usize, subsets: &[&[usize]]) -> Self {
        Self::new(
            num_elements,
            subsets
                .iter()
                .map(|s| FixedBitSet::from_indices(num_elements, s.iter().copied()))
                .collect(),
        )
    }

    /// Number of elements in the universe.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The subsets.
    pub fn subsets(&self) -> &[FixedBitSet] {
        &self.subsets
    }

    /// Number of subsets.
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// `true` if there are no subsets (every set, including ∅, is a hitting set).
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// Append one subset, returning its index.
    ///
    /// Appending (rather than inserting) keeps every existing subset index
    /// stable, which is what lets differential callers describe a grown
    /// system as "the old one plus `appended_from..len()`" — the contract
    /// [`crate::repair`] and [`SuspendedSearch::patch`] are built on.
    ///
    /// # Panics
    /// Panics if the subset's capacity differs from `num_elements`.
    pub fn push_subset(&mut self, subset: FixedBitSet) -> usize {
        assert_eq!(
            subset.capacity(),
            self.num_elements,
            "subset capacity mismatch"
        );
        self.subsets.push(subset);
        self.subsets.len() - 1
    }

    /// `true` if `set` intersects every subset.
    pub fn is_hitting_set(&self, set: &FixedBitSet) -> bool {
        self.subsets.iter().all(|s| s.intersects(set))
    }

    /// `true` if `set` is a hitting set and no proper subset of it is.
    pub fn is_minimal_hitting_set(&self, set: &FixedBitSet) -> bool {
        if !self.is_hitting_set(set) {
            return false;
        }
        set.iter().all(|e| {
            let mut smaller = set.clone();
            smaller.remove(e);
            !self.is_hitting_set(&smaller)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_system_basics() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[3]]);
        assert_eq!(sys.num_elements(), 4);
        assert_eq!(sys.len(), 3);
        assert!(!sys.is_empty());
        let hs = FixedBitSet::from_indices(4, [1, 3]);
        assert!(sys.is_hitting_set(&hs));
        assert!(sys.is_minimal_hitting_set(&hs));
        let non_min = FixedBitSet::from_indices(4, [0, 1, 3]);
        assert!(sys.is_hitting_set(&non_min));
        assert!(!sys.is_minimal_hitting_set(&non_min));
        let not_hs = FixedBitSet::from_indices(4, [0, 3]);
        assert!(!sys.is_hitting_set(&not_hs));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_rejected() {
        SetSystem::new(4, vec![FixedBitSet::new(5)]);
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(BranchStrategy::default(), BranchStrategy::MaxIntersection);
        assert_eq!(BranchStrategy::MaxIntersection.label(), "max-intersection");
        assert_eq!(BranchStrategy::MinIntersection.label(), "min-intersection");
        assert_eq!(BranchStrategy::First.label(), "first");
    }
}
