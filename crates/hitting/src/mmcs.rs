//! MMCS: exact minimal hitting-set enumeration (Murakami & Uno 2014).
//!
//! This is the algorithm of Figure 3 of the ADC paper. The tree walk itself —
//! `uncov` (subsets not yet intersected by the partial solution `S`), `cand`
//! (elements still allowed into `S`), `crit` (for each element of `S`, the
//! subsets for which it is the only hitter), and the pruning of any branch in
//! which some element of `S` stops being critical — lives in the shared
//! [`search engine`](crate::search). This module is the *exact* configuration
//! of that engine: a node is terminal exactly when `uncov` is empty, there is
//! no non-hitting branch, and an uncovered subset no candidate can hit kills
//! the branch outright.
//!
//! Because it is engine-backed, exact enumeration gets the anytime features
//! for free: [`search_minimal_hitting_sets`] accepts a [`SearchOrder`]
//! (shortest-first emission uses the [`greedy_disjoint_lower_bound`] as an
//! admissible frontier key) and a [`SearchBudget`], and reports a
//! [`SearchOutcome`] that distinguishes exhaustive from truncated runs.
//! Budget-cut runs are resumable ([`search_minimal_hitting_sets_resumable`] /
//! [`resume_minimal_hitting_sets`]), and unbudgeted depth-first runs take the
//! engine's in-place undo walk, which skips per-child node snapshots
//! entirely — the classic recursive MMCS cost profile.

use crate::search::{
    greedy_disjoint_lower_bound, resume_search, run_search, run_search_resumable,
    run_search_within, NodeDisposition, SearchBudget, SearchConfig, SearchDriver, SearchNode,
    SearchOrder, SearchOutcome, SuspendedSearch,
};
use crate::{BranchStrategy, SetSystem};
use adc_data::FixedBitSet;

/// Enumerate all minimal hitting sets of `system`.
///
/// `strategy` controls which uncovered subset is branched on next (the
/// classic choice is [`BranchStrategy::MinIntersection`]). The callback is
/// invoked once per minimal hitting set; return `false` from it to stop the
/// enumeration early. Returns the number of emitted sets.
pub fn enumerate_minimal_hitting_sets<F>(
    system: &SetSystem,
    strategy: BranchStrategy,
    mut callback: F,
) -> usize
where
    F: FnMut(&FixedBitSet) -> bool,
{
    search_minimal_hitting_sets(
        system,
        strategy,
        SearchOrder::Dfs,
        SearchBudget::unlimited(),
        &mut callback,
    )
    .emitted
}

/// Enumerate minimal hitting sets under an explicit frontier order and
/// budget, returning the full [`SearchOutcome`].
///
/// With [`SearchOrder::ShortestFirst`] the sets are emitted in nondecreasing
/// size (ties broken deterministically by discovery order), so a truncated
/// run keeps the entire shortest part of the minimal frontier —
/// [`SearchOutcome::truncation`] reports up to which size it is complete.
pub fn search_minimal_hitting_sets<F>(
    system: &SetSystem,
    strategy: BranchStrategy,
    order: SearchOrder,
    budget: SearchBudget,
    callback: &mut F,
) -> SearchOutcome
where
    F: FnMut(&FixedBitSet) -> bool,
{
    let config = SearchConfig {
        strategy,
        order,
        budget,
    };
    run_search(system, &mut ExactDriver, &config, callback)
}

/// Like [`search_minimal_hitting_sets`], but a budget-cut run also returns a
/// [`SuspendedSearch`] token. Feeding the token to
/// [`resume_minimal_hitting_sets`] continues the traversal exactly where it
/// stopped: the concatenated emission across slices equals the sequence of a
/// single uncapped run.
pub fn search_minimal_hitting_sets_resumable<F>(
    system: &SetSystem,
    strategy: BranchStrategy,
    order: SearchOrder,
    budget: SearchBudget,
    callback: &mut F,
) -> (SearchOutcome, Option<SuspendedSearch>)
where
    F: FnMut(&FixedBitSet) -> bool,
{
    let config = SearchConfig {
        strategy,
        order,
        budget,
    };
    run_search_resumable(system, &mut ExactDriver, &config, callback)
}

/// Continue a suspended exact enumeration. `budget` applies to this slice
/// alone; order and strategy are taken from the token (which
/// [`resume_search`] validates against).
pub fn resume_minimal_hitting_sets<F>(
    system: &SetSystem,
    budget: SearchBudget,
    suspended: SuspendedSearch,
    callback: &mut F,
) -> (SearchOutcome, Option<SuspendedSearch>)
where
    F: FnMut(&FixedBitSet) -> bool,
{
    let config = SearchConfig {
        strategy: suspended.strategy(),
        order: suspended.order(),
        budget,
    };
    resume_search(system, &mut ExactDriver, &config, suspended, callback)
}

/// Enumerate exactly the minimal hitting sets of `system` that are
/// **contained in** `allowed`, by restricting the search engine's root
/// candidate set (see [`run_search_within`] for why restriction preserves
/// both soundness and completeness of the confined answer set).
///
/// This is the local-enumeration primitive of removal-aware cover repair
/// ([`crate::repair::repair_covers_removal`]): after a subset `R` is removed
/// from a system, every *genuinely new* minimal cover misses `R`, i.e. lies
/// in `R`'s complement — so the new covers are recovered by one confined run
/// per removed subset instead of a full-frontier restart.
///
/// Runs unbudgeted depth-first (the in-place undo walk), returning the full
/// [`SearchOutcome`] so callers can account for the nodes the confined
/// enumeration expanded.
pub fn search_minimal_hitting_sets_within<F>(
    system: &SetSystem,
    allowed: &FixedBitSet,
    strategy: BranchStrategy,
    callback: &mut F,
) -> SearchOutcome
where
    F: FnMut(&FixedBitSet) -> bool,
{
    let config = SearchConfig {
        strategy,
        order: SearchOrder::Dfs,
        budget: SearchBudget::unlimited(),
    };
    run_search_within(system, &mut ExactDriver, allowed, &config, callback)
}

/// Patch a suspended **exact** enumeration after subsets were appended to
/// the system (see [`SuspendedSearch::patch`] for the mechanics and the
/// soundness/completeness contract). Returns the number of frontier nodes
/// that gained an uncovered subset.
///
/// Exact enumeration re-checks nothing at emission beyond `uncov` being
/// empty, so the patched frontier may be resumed with
/// [`resume_minimal_hitting_sets`] against the grown system directly: every
/// emission is a minimal hitting set of the grown system. Covers emitted
/// *before* the patch are the caller's to repair
/// ([`crate::repair::repair_covers`]).
pub fn patch_minimal_hitting_search(
    suspended: &mut SuspendedSearch,
    system: &SetSystem,
    appended_from: usize,
) -> usize {
    suspended.patch(system, appended_from)
}

/// Convenience wrapper collecting all minimal hitting sets into a vector.
pub fn minimal_hitting_sets(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    enumerate_minimal_hitting_sets(system, strategy, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// The exact MMCS configuration of the search engine.
struct ExactDriver;

impl SearchDriver for ExactDriver {
    fn classify(&mut self, _system: &SetSystem, node: &SearchNode) -> NodeDisposition {
        if node.uncov().is_empty() {
            // Criticality is maintained along every path, so a full cover is
            // automatically minimal.
            NodeDisposition::Emit
        } else {
            NodeDisposition::Expand
        }
    }

    fn lower_bound(&mut self, system: &SetSystem, node: &SearchNode) -> usize {
        greedy_disjoint_lower_bound(system, node.uncov(), node.cand())
    }

    fn supports_inplace_dfs(&self) -> bool {
        // `classify` is exactly the exact-MMCS rule (emit iff `uncov` is
        // empty), so unbudgeted DFS runs may use the engine's in-place undo
        // walk instead of per-child node snapshots.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_minimal_hitting_sets;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn as_sorted_vecs(mut sets: Vec<FixedBitSet>) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.drain(..).map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    fn shortest_first(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
        let mut out = Vec::new();
        let outcome = search_minimal_hitting_sets(
            system,
            strategy,
            SearchOrder::ShortestFirst,
            SearchBudget::unlimited(),
            &mut |s: &FixedBitSet| {
                out.push(s.clone());
                true
            },
        );
        assert!(outcome.is_exhaustive());
        assert_eq!(outcome.emitted, out.len());
        out
    }

    #[test]
    fn simple_instance_all_strategies() {
        // Subsets {0,1}, {1,2}, {2,3}: minimal hitting sets {1,2}, {1,3}, {0,2}.
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let expected = vec![vec![0, 2], vec![1, 2], vec![1, 3]];
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let found = as_sorted_vecs(minimal_hitting_sets(&sys, strategy));
            assert_eq!(found, expected, "strategy {strategy:?}");
            let found = as_sorted_vecs(shortest_first(&sys, strategy));
            assert_eq!(found, expected, "shortest-first, strategy {strategy:?}");
        }
    }

    #[test]
    fn empty_family_yields_empty_set() {
        let sys = SetSystem::from_indices(3, &[]);
        let found = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].is_empty());
    }

    #[test]
    fn unhittable_subset_yields_nothing() {
        let sys = SetSystem::new(3, vec![FixedBitSet::new(3)]);
        assert!(minimal_hitting_sets(&sys, BranchStrategy::default()).is_empty());
    }

    #[test]
    fn disjoint_subsets_need_one_element_each() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let found = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(found.len(), 8);
        for hs in &found {
            assert_eq!(hs.len(), 3);
            assert!(sys.is_minimal_hitting_set(hs));
        }
    }

    #[test]
    fn duplicate_subsets_are_harmless() {
        let sys = SetSystem::from_indices(3, &[&[0, 1], &[0, 1], &[2]]);
        let found = as_sorted_vecs(minimal_hitting_sets(&sys, BranchStrategy::default()));
        assert_eq!(found, vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn early_stop_via_callback() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let mut seen = 0;
        let emitted = enumerate_minimal_hitting_sets(&sys, BranchStrategy::default(), |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
        assert_eq!(emitted, 3);
    }

    #[test]
    fn callback_stop_reports_truncation() {
        use crate::search::TruncationReason;
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let mut seen = 0;
        let outcome = search_minimal_hitting_sets(
            &sys,
            BranchStrategy::default(),
            SearchOrder::ShortestFirst,
            SearchBudget::unlimited(),
            &mut |_: &FixedBitSet| {
                seen += 1;
                seen < 3
            },
        );
        assert_eq!(outcome.emitted, 3);
        let truncation = outcome.truncation.expect("run was cut short");
        assert_eq!(truncation.reason, TruncationReason::Callback);
        // All 8 covers have size 3, so nothing below size 3 is pending.
        assert_eq!(truncation.complete_below, Some(3));
    }

    #[test]
    fn shortest_first_emits_in_nondecreasing_size() {
        // Mixed cover sizes: {4} hits the last subset alone, the chain needs 2.
        let sys = SetSystem::from_indices(5, &[&[0, 1, 4], &[1, 2, 4], &[2, 3, 4], &[4]]);
        let found = shortest_first(&sys, BranchStrategy::default());
        let sizes: Vec<usize> = found.iter().map(|s| s.len()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted, "emission must be nondecreasing in size");
        assert_eq!(
            found[0].to_vec(),
            vec![4],
            "the singleton cover comes first"
        );
    }

    #[test]
    fn max_nodes_budget_truncates() {
        use crate::search::TruncationReason;
        let sys = SetSystem::from_indices(8, &[&[0, 1], &[2, 3], &[4, 5], &[6, 7]]);
        let mut out = Vec::new();
        let outcome = search_minimal_hitting_sets(
            &sys,
            BranchStrategy::default(),
            SearchOrder::ShortestFirst,
            SearchBudget::unlimited().with_max_nodes(3),
            &mut |s: &FixedBitSet| {
                out.push(s.clone());
                true
            },
        );
        assert!(!outcome.is_exhaustive());
        assert_eq!(outcome.nodes_expanded, 3);
        assert_eq!(
            outcome.truncation.unwrap().reason,
            TruncationReason::MaxNodes
        );
    }

    #[test]
    fn inplace_dfs_matches_the_explicit_engine_order() {
        // `enumerate_minimal_hitting_sets` (unbudgeted DFS) takes the
        // in-place undo walk; forcing any budget falls back to the explicit
        // frontier. Both must emit the identical sequence, not just set.
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..20 {
            let m = rng.gen_range(3..9);
            let k = rng.gen_range(1..7);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
                BranchStrategy::First,
            ] {
                let mut inplace = Vec::new();
                let fast = search_minimal_hitting_sets(
                    &sys,
                    strategy,
                    SearchOrder::Dfs,
                    SearchBudget::unlimited(),
                    &mut |s: &FixedBitSet| {
                        inplace.push(s.to_vec());
                        true
                    },
                );
                let mut explicit = Vec::new();
                let slow = search_minimal_hitting_sets(
                    &sys,
                    strategy,
                    SearchOrder::Dfs,
                    SearchBudget::unlimited().with_max_nodes(u64::MAX),
                    &mut |s: &FixedBitSet| {
                        explicit.push(s.to_vec());
                        true
                    },
                );
                assert_eq!(inplace, explicit, "strategy {strategy:?}");
                assert_eq!(fast.emitted, slow.emitted);
                assert_eq!(fast.nodes_expanded, slow.nodes_expanded);
                assert!(fast.is_exhaustive() && slow.is_exhaustive());
            }
        }
    }

    #[test]
    fn budget_cut_exact_run_resumes_to_the_uncapped_sequence() {
        let sys = SetSystem::from_indices(8, &[&[0, 1], &[2, 3], &[4, 5], &[6, 7]]);
        for order in [SearchOrder::Dfs, SearchOrder::ShortestFirst] {
            let mut reference = Vec::new();
            let outcome = search_minimal_hitting_sets(
                &sys,
                BranchStrategy::default(),
                order,
                SearchBudget::unlimited(),
                &mut |s: &FixedBitSet| {
                    reference.push(s.to_vec());
                    true
                },
            );
            assert!(outcome.is_exhaustive());
            assert_eq!(reference.len(), 16);

            let slice = SearchBudget::unlimited().with_max_nodes(5);
            let mut covers = Vec::new();
            let (_, mut suspended) = search_minimal_hitting_sets_resumable(
                &sys,
                BranchStrategy::default(),
                order,
                slice,
                &mut |s: &FixedBitSet| {
                    covers.push(s.to_vec());
                    true
                },
            );
            let mut slices = 1;
            while let Some(token) = suspended.take() {
                slices += 1;
                assert!(slices < 100, "runaway resume loop");
                let (_, next) =
                    resume_minimal_hitting_sets(&sys, slice, token, &mut |s: &FixedBitSet| {
                        covers.push(s.to_vec());
                        true
                    });
                suspended = next;
            }
            assert!(slices > 2, "the slice budget never fired ({order:?})");
            assert_eq!(covers, reference, "order {order:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let m = rng.gen_range(3..9);
            let k = rng.gen_range(1..7);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let expected = as_sorted_vecs(brute_force_minimal_hitting_sets(&sys));
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
            ] {
                let found = as_sorted_vecs(minimal_hitting_sets(&sys, strategy));
                assert_eq!(found, expected, "strategy {strategy:?}");
            }
        }
    }

    fn within(system: &SetSystem, allowed: &FixedBitSet) -> Vec<FixedBitSet> {
        let mut out = Vec::new();
        let outcome = search_minimal_hitting_sets_within(
            system,
            allowed,
            BranchStrategy::default(),
            &mut |s: &FixedBitSet| {
                out.push(s.clone());
                true
            },
        );
        assert!(outcome.is_exhaustive());
        assert_eq!(outcome.emitted, out.len());
        out
    }

    #[test]
    fn confined_enumeration_keeps_exactly_the_contained_covers() {
        // T = {{0,2}, {1,2}, {1,3}} for subsets {0,1},{1,2},{2,3}.
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        // allowed = {0,1,2}: drops {1,3}, keeps {0,2} and {1,2}.
        let allowed = FixedBitSet::from_indices(4, [0, 1, 2]);
        let found = as_sorted_vecs(within(&sys, &allowed));
        assert_eq!(found, vec![vec![0, 2], vec![1, 2]]);
        // allowed = {3}: no confined cover exists ({3} misses subset {0,1}).
        let only3 = FixedBitSet::from_indices(4, [3]);
        assert!(within(&sys, &only3).is_empty());
        // allowed = everything behaves like the unrestricted run.
        let all = FixedBitSet::full(4);
        assert_eq!(
            as_sorted_vecs(within(&sys, &all)),
            as_sorted_vecs(minimal_hitting_sets(&sys, BranchStrategy::default()))
        );
    }

    #[test]
    fn confined_enumeration_of_the_empty_system_emits_the_empty_cover() {
        let sys = SetSystem::new(3, Vec::new());
        let allowed = FixedBitSet::new(3); // even an empty restriction
        let found = within(&sys, &allowed);
        assert_eq!(found.len(), 1);
        assert!(found[0].is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The confined run equals the brute-force answer filtered to
        /// subsets of `allowed`, on random systems and random restrictions.
        #[test]
        fn prop_confined_equals_filtered_brute_force(
            subsets in proptest::collection::vec(proptest::collection::vec(0usize..7, 1..5), 0..6),
            allowed_bits in proptest::collection::vec(any::<bool>(), 7..8),
        ) {
            let m = 7;
            let refs: Vec<&[usize]> = subsets.iter().map(|s| s.as_slice()).collect();
            let sys = SetSystem::from_indices(m, &refs);
            let allowed = FixedBitSet::from_indices(
                m,
                allowed_bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i),
            );
            let found = as_sorted_vecs(within(&sys, &allowed));
            let expected: Vec<Vec<usize>> = as_sorted_vecs(brute_force_minimal_hitting_sets(&sys))
                .into_iter()
                .filter(|cover| cover.iter().all(|&e| allowed.contains(e)))
                .collect();
            prop_assert_eq!(found, expected);
        }

        #[test]
        fn prop_outputs_are_exactly_the_minimal_hitting_sets(
            subsets in proptest::collection::vec(proptest::collection::vec(0usize..7, 1..5), 0..6)
        ) {
            let m = 7;
            let refs: Vec<&[usize]> = subsets.iter().map(|s| s.as_slice()).collect();
            let sys = SetSystem::from_indices(m, &refs);
            let found = as_sorted_vecs(minimal_hitting_sets(&sys, BranchStrategy::default()));
            let expected = as_sorted_vecs(brute_force_minimal_hitting_sets(&sys));
            prop_assert_eq!(found, expected);
        }
    }
}
