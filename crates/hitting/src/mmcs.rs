//! MMCS: exact minimal hitting-set enumeration (Murakami & Uno 2014).
//!
//! This is the algorithm of Figure 3 of the ADC paper. It maintains three
//! structures — `uncov` (subsets not yet intersected by the partial solution
//! `S`), `cand` (elements still allowed into `S`), and `crit` (for each
//! element of `S`, the subsets for which it is the only hitter) — and
//! explores partial solutions depth-first, pruning any branch in which some
//! element of `S` stops being critical (such a branch can never yield a
//! *minimal* hitting set).

use crate::{BranchStrategy, SetSystem};
use adc_data::FixedBitSet;

/// Enumerate all minimal hitting sets of `system`.
///
/// `strategy` controls which uncovered subset is branched on next (the
/// classic choice is [`BranchStrategy::MinIntersection`]). The callback is
/// invoked once per minimal hitting set; return `false` from it to stop the
/// enumeration early.
pub fn enumerate_minimal_hitting_sets<F>(
    system: &SetSystem,
    strategy: BranchStrategy,
    mut callback: F,
) -> usize
where
    F: FnMut(&FixedBitSet) -> bool,
{
    let mut state = MmcsState::new(system, strategy);
    state.run(&mut callback);
    state.emitted
}

/// Convenience wrapper collecting all minimal hitting sets into a vector.
pub fn minimal_hitting_sets(system: &SetSystem, strategy: BranchStrategy) -> Vec<FixedBitSet> {
    let mut out = Vec::new();
    enumerate_minimal_hitting_sets(system, strategy, |s| {
        out.push(s.clone());
        true
    });
    out
}

struct MmcsState<'a> {
    system: &'a SetSystem,
    strategy: BranchStrategy,
    /// Current partial hitting set.
    s: Vec<usize>,
    s_set: FixedBitSet,
    /// Candidate elements.
    cand: FixedBitSet,
    /// Indexes of subsets not yet covered by `s`.
    uncov: Vec<usize>,
    /// `crit[e]` = subsets for which element `e ∈ s` is critical.
    crit: Vec<Vec<usize>>,
    emitted: usize,
    stopped: bool,
}

/// Undo record for one `update_crit_uncov` call.
struct Undo {
    element: usize,
    /// Subsets moved from `uncov` into `crit[element]`.
    covered: Vec<usize>,
    /// `(u, subset)` pairs removed from `crit[u]`.
    removed_from_crit: Vec<(usize, usize)>,
}

impl<'a> MmcsState<'a> {
    fn new(system: &'a SetSystem, strategy: BranchStrategy) -> Self {
        let m = system.num_elements();
        MmcsState {
            system,
            strategy,
            s: Vec::new(),
            s_set: FixedBitSet::new(m),
            cand: FixedBitSet::full(m),
            uncov: (0..system.len()).collect(),
            crit: vec![Vec::new(); m],
            emitted: 0,
            stopped: false,
        }
    }

    fn run<F: FnMut(&FixedBitSet) -> bool>(&mut self, callback: &mut F) {
        if self.stopped {
            return;
        }
        if self.uncov.is_empty() {
            self.emitted += 1;
            if !callback(&self.s_set) {
                self.stopped = true;
            }
            return;
        }
        let Some(chosen) = self.choose_subset() else {
            // Some uncovered subset has an empty intersection with cand:
            // this branch can never produce a hitting set.
            return;
        };
        let f = &self.system.subsets()[chosen];
        // C = cand ∩ F; cand = cand \ C.
        let c: Vec<usize> = self.cand.intersection(f).to_vec();
        for &e in &c {
            self.cand.remove(e);
        }
        let mut restored: Vec<usize> = Vec::with_capacity(c.len());
        for &e in &c {
            let undo = self.update_crit_uncov(e);
            let all_critical = self.s.iter().all(|&u| !self.crit[u].is_empty());
            if all_critical {
                self.s.push(e);
                self.s_set.insert(e);
                self.run(callback);
                self.s.pop();
                self.s_set.remove(e);
                // Only elements passing the criticality test return to cand
                // (an element not critical for any subset w.r.t. S can never
                // be critical w.r.t. a superset of S).
                restored.push(e);
                self.cand.insert(e);
            }
            self.undo_crit_uncov(undo);
            if self.stopped {
                break;
            }
        }
        // Recover the cand changes: remove what we restored mid-loop, then
        // re-insert all of C (line 13 of Figure 3).
        for &e in &restored {
            self.cand.remove(e);
        }
        for &e in &c {
            self.cand.insert(e);
        }
    }

    /// Select the next uncovered subset according to the branch strategy.
    /// Returns `None` if some uncovered subset cannot be hit by any candidate
    /// (making the branch hopeless).
    fn choose_subset(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for &fi in &self.uncov {
            let inter = self.system.subsets()[fi].intersection_count(&self.cand);
            if inter == 0 {
                return None;
            }
            best = match (best, self.strategy) {
                (None, _) => Some((fi, inter)),
                (Some((_, b)), BranchStrategy::MaxIntersection) if inter > b => Some((fi, inter)),
                (Some((_, b)), BranchStrategy::MinIntersection) if inter < b => Some((fi, inter)),
                (Some(prev), BranchStrategy::First) => Some(prev),
                (Some(prev), _) => Some(prev),
            };
            if self.strategy == BranchStrategy::First {
                // Keep scanning only to verify every uncovered subset is hittable.
                continue;
            }
        }
        best.map(|(fi, _)| fi)
    }

    /// `UpdateCritUncov(e, S, crit, uncov)` of Figure 3.
    fn update_crit_uncov(&mut self, e: usize) -> Undo {
        let mut covered = Vec::new();
        let mut kept = Vec::with_capacity(self.uncov.len());
        for &fi in &self.uncov {
            if self.system.subsets()[fi].contains(e) {
                covered.push(fi);
                self.crit[e].push(fi);
            } else {
                kept.push(fi);
            }
        }
        self.uncov = kept;

        let mut removed_from_crit = Vec::new();
        for &u in &self.s {
            let subsets = self.system.subsets();
            self.crit[u].retain(|&fi| {
                if subsets[fi].contains(e) {
                    removed_from_crit.push((u, fi));
                    false
                } else {
                    true
                }
            });
        }
        Undo {
            element: e,
            covered,
            removed_from_crit,
        }
    }

    fn undo_crit_uncov(&mut self, undo: Undo) {
        for _ in 0..undo.covered.len() {
            self.crit[undo.element].pop();
        }
        // Restore uncov (order is irrelevant to correctness).
        self.uncov.extend(undo.covered);
        for (u, fi) in undo.removed_from_crit {
            self.crit[u].push(fi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_minimal_hitting_sets;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn as_sorted_vecs(mut sets: Vec<FixedBitSet>) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.drain(..).map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    #[test]
    fn simple_instance_all_strategies() {
        // Subsets {0,1}, {1,2}, {2,3}: minimal hitting sets {1,2}, {1,3}, {0,2}.
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let expected = vec![vec![0, 2], vec![1, 2], vec![1, 3]];
        for strategy in [
            BranchStrategy::MaxIntersection,
            BranchStrategy::MinIntersection,
            BranchStrategy::First,
        ] {
            let found = as_sorted_vecs(minimal_hitting_sets(&sys, strategy));
            assert_eq!(found, expected, "strategy {strategy:?}");
        }
    }

    #[test]
    fn empty_family_yields_empty_set() {
        let sys = SetSystem::from_indices(3, &[]);
        let found = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].is_empty());
    }

    #[test]
    fn unhittable_subset_yields_nothing() {
        let sys = SetSystem::new(3, vec![FixedBitSet::new(3)]);
        assert!(minimal_hitting_sets(&sys, BranchStrategy::default()).is_empty());
    }

    #[test]
    fn disjoint_subsets_need_one_element_each() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let found = minimal_hitting_sets(&sys, BranchStrategy::default());
        assert_eq!(found.len(), 8);
        for hs in &found {
            assert_eq!(hs.len(), 3);
            assert!(sys.is_minimal_hitting_set(hs));
        }
    }

    #[test]
    fn duplicate_subsets_are_harmless() {
        let sys = SetSystem::from_indices(3, &[&[0, 1], &[0, 1], &[2]]);
        let found = as_sorted_vecs(minimal_hitting_sets(&sys, BranchStrategy::default()));
        assert_eq!(found, vec![vec![0, 2], vec![1, 2]]);
    }

    #[test]
    fn early_stop_via_callback() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let mut seen = 0;
        let emitted = enumerate_minimal_hitting_sets(&sys, BranchStrategy::default(), |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
        assert_eq!(emitted, 3);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let m = rng.gen_range(3..9);
            let k = rng.gen_range(1..7);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let expected = as_sorted_vecs(brute_force_minimal_hitting_sets(&sys));
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
            ] {
                let found = as_sorted_vecs(minimal_hitting_sets(&sys, strategy));
                assert_eq!(found, expected, "strategy {strategy:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_outputs_are_exactly_the_minimal_hitting_sets(
            subsets in proptest::collection::vec(proptest::collection::vec(0usize..7, 1..5), 0..6)
        ) {
            let m = 7;
            let refs: Vec<&[usize]> = subsets.iter().map(|s| s.as_slice()).collect();
            let sys = SetSystem::from_indices(m, &refs);
            let found = as_sorted_vecs(minimal_hitting_sets(&sys, BranchStrategy::default()));
            let expected = as_sorted_vecs(brute_force_minimal_hitting_sets(&sys));
            prop_assert_eq!(found, expected);
        }
    }
}
