//! Approximate minimal hitting-set enumeration — the generic core of
//! `ADCEnum` (Figures 4 and 5 of the VLDB 2020 ADC paper).
//!
//! Compared to MMCS, three things change:
//!
//! 1. **Base case.** A partial solution is emitted as soon as
//!    `1 − f(S) ≤ ε` *and* removing any single element breaks that bound
//!    (the explicit `IsMinimal` check — criticality alone no longer implies
//!    minimality because an approximate hitting set may leave subsets
//!    uncovered).
//! 2. **A second branch per step** that *does not* hit the chosen subset
//!    `F`. To keep the search finite, every subset that can no longer be
//!    hit by the remaining candidates is marked `canHit = false`
//!    (`UpdateCanCover`) and is never selected again; the branch is only
//!    explored if adding the whole candidate list would reach the threshold
//!    (`WillCover` pruning, justified by monotonicity).
//! 3. **Redundant-element suppression.** When element groups are supplied
//!    (predicates differing only by operator), adding one element removes the
//!    rest of its group from the candidate list for that branch, suppressing
//!    trivial constraints.
//!
//! All three are plugged into the shared [`search engine`](crate::search) as
//! an [`ApproxDriver`](self): this module holds no tree walk of its own, so
//! the approximate enumerator inherits the engine's frontier orders
//! ([`SearchOrder::ShortestFirst`] emits in nondecreasing size) and anytime
//! budgets ([`SearchBudget`]) unchanged.
//!
//! The scoring function is supplied by the caller and must satisfy the
//! monotonicity and indifference-to-redundancy axioms for the enumeration to
//! be complete (see `adc-approx`).

use crate::search::{
    resume_search, run_search_resumable, NodeDisposition, SearchBudget, SearchConfig, SearchDriver,
    SearchNode, SearchOrder, SearchOutcome, SuspendedSearch,
};
use crate::{BranchStrategy, SetSystem};
use adc_data::FixedBitSet;

/// Configuration for [`enumerate_approx_minimal_hitting_sets`].
#[derive(Debug, Clone)]
pub struct ApproxEnumConfig<'a> {
    /// Approximation threshold ε ≥ 0: emit `S` when `1 − f(S) ≤ ε`.
    pub epsilon: f64,
    /// Branching strategy for choosing the next subset to hit.
    pub strategy: BranchStrategy,
    /// Optional structure-group id per element; when an element enters the
    /// partial solution, the rest of its group leaves the candidate list for
    /// that branch (the paper's `RemoveRedundantPreds`).
    pub element_groups: Option<&'a [usize]>,
    /// Enable the `WillCover` pruning of the non-hitting branch (line 9 of
    /// Figure 4). Disabling it is only useful for ablation studies.
    pub will_cover_pruning: bool,
    /// Stop after emitting this many results (`None` = unlimited). Folded
    /// into [`ApproxEnumConfig::budget`] at run time; kept as its own field
    /// for backward compatibility.
    pub max_results: Option<usize>,
    /// Frontier order of the underlying search engine.
    pub order: SearchOrder,
    /// Resource budget of the underlying search engine.
    pub budget: SearchBudget,
}

impl<'a> ApproxEnumConfig<'a> {
    /// Default configuration for a given threshold.
    pub fn new(epsilon: f64) -> Self {
        ApproxEnumConfig {
            epsilon,
            strategy: BranchStrategy::default(),
            element_groups: None,
            will_cover_pruning: true,
            max_results: None,
            order: SearchOrder::default(),
            budget: SearchBudget::default(),
        }
    }

    /// Set the branch strategy.
    pub fn with_strategy(mut self, strategy: BranchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Provide element structure groups.
    pub fn with_element_groups(mut self, groups: &'a [usize]) -> Self {
        self.element_groups = Some(groups);
        self
    }

    /// Enable or disable the `WillCover` pruning.
    pub fn with_will_cover_pruning(mut self, enabled: bool) -> Self {
        self.will_cover_pruning = enabled;
        self
    }

    /// Limit the number of emitted results.
    pub fn with_max_results(mut self, max: usize) -> Self {
        self.max_results = Some(max);
        self
    }

    /// Select the frontier order (shortest-first emits in nondecreasing size).
    pub fn with_order(mut self, order: SearchOrder) -> Self {
        self.order = order;
        self
    }

    /// Bound the search by nodes, wall-clock time, and/or emitted results.
    pub fn with_budget(mut self, budget: SearchBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The engine budget with [`ApproxEnumConfig::max_results`] folded in.
    fn effective_budget(&self) -> SearchBudget {
        let mut budget = self.budget;
        if let Some(max) = self.max_results {
            budget.max_emitted = Some(match budget.max_emitted {
                Some(existing) => existing.min(max),
                None => max,
            });
        }
        budget
    }
}

/// Counters describing one enumeration run (used by the benchmark harness
/// and the ablation studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproxEnumStats {
    /// Number of search nodes visited (one per recursive call in the paper's
    /// formulation).
    pub recursive_calls: u64,
    /// Number of scoring-function evaluations.
    pub score_evaluations: u64,
    /// Number of emitted minimal approximate hitting sets.
    pub emitted: u64,
    /// High-water mark of simultaneously held frontier nodes — the memory
    /// footprint the `max_frontier_nodes` budget bounds.
    pub peak_frontier: u64,
    /// Memory-bound frontier contractions performed (non-zero only when
    /// [`SearchBudget::max_frontier_nodes`] fired).
    pub frontier_contractions: u64,
}

/// Enumerate all minimal approximate hitting sets of `system` w.r.t. the
/// scoring function `score` and the threshold in `config`.
///
/// `score(X)` must return `f(X) ∈ [0, 1]`; the callback receives each
/// minimal set and may return `false` to stop early. Returns run statistics.
pub fn enumerate_approx_minimal_hitting_sets<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    mut callback: F,
) -> ApproxEnumStats
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    search_approx_minimal_hitting_sets(system, score, config, &mut callback).0
}

/// Like [`enumerate_approx_minimal_hitting_sets`], but also returning the
/// engine's [`SearchOutcome`] so callers can distinguish an exhaustive run
/// from one cut short by the budget, the result cap, or the callback.
pub fn search_approx_minimal_hitting_sets<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    callback: &mut F,
) -> (ApproxEnumStats, SearchOutcome)
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    let (stats, outcome, _) =
        search_approx_minimal_hitting_sets_resumable(system, score, config, callback);
    (stats, outcome)
}

/// Like [`search_approx_minimal_hitting_sets`], but a budget- or cap-cut run
/// also returns a [`SuspendedSearch`] token for
/// [`resume_approx_minimal_hitting_sets`]. A cut run resumed to completion
/// (with the identical system, score, and config) emits exactly the same
/// cover sequence as a single uncut run.
pub fn search_approx_minimal_hitting_sets_resumable<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    callback: &mut F,
) -> (ApproxEnumStats, SearchOutcome, Option<SuspendedSearch>)
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    approx_run(system, score, config, None, callback)
}

/// Continue a suspended approximate enumeration. `config` must describe the
/// same problem as the original run (threshold, groups, pruning, score);
/// its budget and result cap apply to this slice alone.
pub fn resume_approx_minimal_hitting_sets<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    suspended: SuspendedSearch,
    callback: &mut F,
) -> (ApproxEnumStats, SearchOutcome, Option<SuspendedSearch>)
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    approx_run(system, score, config, Some(suspended), callback)
}

/// Patch a suspended **approximate** enumeration after subsets were appended
/// to the system, when that is sound — i.e. only at `ε = 0`, where the
/// threshold test degenerates to "hits every subset" for any approximation
/// function satisfying the paper's axioms, so the frontier's past pruning
/// decisions remain valid against the grown system. For `ε > 0` the
/// count-weighted scores of already-classified nodes may shift
/// non-monotonically under a delta, so no patch is attempted and `None` is
/// returned — restart the enumeration instead.
///
/// On success returns the number of frontier nodes that gained an uncovered
/// subset (the [`SuspendedSearch::patch`] contract: sound continuation, not
/// complete relative to a from-scratch run).
pub fn patch_approx_search(
    suspended: &mut SuspendedSearch,
    system: &SetSystem,
    config: &ApproxEnumConfig<'_>,
    appended_from: usize,
) -> Option<usize> {
    if config.epsilon != 0.0 {
        return None;
    }
    Some(suspended.patch(system, appended_from))
}

fn approx_run<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    suspended: Option<SuspendedSearch>,
    callback: &mut F,
) -> (ApproxEnumStats, SearchOutcome, Option<SuspendedSearch>)
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    assert!(config.epsilon >= 0.0, "epsilon must be non-negative");
    if let Some(groups) = config.element_groups {
        assert_eq!(
            groups.len(),
            system.num_elements(),
            "element_groups length must equal the number of elements"
        );
    }
    let mut driver = ApproxDriver {
        score: &score,
        epsilon: config.epsilon,
        element_groups: config.element_groups,
        will_cover_pruning: config.will_cover_pruning,
        score_evaluations: 0,
    };
    let engine_config = SearchConfig {
        strategy: config.strategy,
        order: config.order,
        budget: config.effective_budget(),
    };
    let (outcome, next) = match suspended {
        None => run_search_resumable(system, &mut driver, &engine_config, callback),
        Some(token) => resume_search(system, &mut driver, &engine_config, token, callback),
    };
    let stats = ApproxEnumStats {
        recursive_calls: outcome.nodes_expanded,
        score_evaluations: driver.score_evaluations,
        emitted: outcome.emitted as u64,
        peak_frontier: outcome.peak_frontier as u64,
        frontier_contractions: outcome.contractions,
    };
    (stats, outcome, next)
}

/// Convenience wrapper collecting the results into a vector.
pub fn approx_minimal_hitting_sets<S>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
) -> Vec<FixedBitSet>
where
    S: Fn(&FixedBitSet) -> f64,
{
    let mut out = Vec::new();
    enumerate_approx_minimal_hitting_sets(system, score, config, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// The `ADCEnum` configuration of the search engine: ε-acceptance base case
/// with the explicit `IsMinimal` check, the non-hitting branch guarded by
/// `WillCover`, and redundant-group suppression.
struct ApproxDriver<'a, S: Fn(&FixedBitSet) -> f64> {
    score: &'a S,
    epsilon: f64,
    element_groups: Option<&'a [usize]>,
    will_cover_pruning: bool,
    score_evaluations: u64,
}

impl<S: Fn(&FixedBitSet) -> f64> ApproxDriver<'_, S> {
    fn meets_threshold(&mut self, set: &FixedBitSet) -> bool {
        self.score_evaluations += 1;
        1.0 - (self.score)(set) <= self.epsilon
    }
}

impl<S: Fn(&FixedBitSet) -> f64> SearchDriver for ApproxDriver<'_, S> {
    fn classify(&mut self, _system: &SetSystem, node: &SearchNode) -> NodeDisposition {
        // Base case: once the threshold is met, no strict superset can be
        // minimal (monotonicity), so the node is terminal either way.
        if !self.meets_threshold(node.solution()) {
            return NodeDisposition::Expand;
        }
        // `IsMinimal` of Figure 5: no single-element removal stays within ε.
        for &e in node.elements() {
            let mut smaller = node.solution().clone();
            smaller.remove(e);
            if self.meets_threshold(&smaller) {
                return NodeDisposition::Discard;
            }
        }
        NodeDisposition::Emit
    }

    fn wants_skip_branch(&self) -> bool {
        true
    }

    fn explore_skip_branch(
        &mut self,
        _system: &SetSystem,
        solution: &FixedBitSet,
        cand: &FixedBitSet,
    ) -> bool {
        // `WillCover` of Figure 5: could adding every remaining candidate
        // reach ε? (Skippable only for ablation studies.)
        !self.will_cover_pruning || self.meets_threshold(&solution.union(cand))
    }

    fn group_of(&self, element: usize) -> Option<usize> {
        self.element_groups.map(|groups| groups[element])
    }

    fn unhittable_is_fatal(&self) -> bool {
        false
    }

    // The default `lower_bound` of 0 is deliberate: an approximate cover may
    // leave subsets uncovered, so the disjoint-uncovered bound of the exact
    // problem is NOT admissible here. `|S|` alone still orders emissions by
    // size under shortest-first.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{brute_force_minimal_approx_hitting_sets, brute_force_minimal_hitting_sets};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn as_sorted_vecs(sets: &[FixedBitSet]) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.iter().map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    /// A weighted coverage score: fraction of subset weight hit. Monotone and
    /// indifferent to redundancy by construction — the same family `f1`
    /// belongs to.
    fn coverage_score(system: &SetSystem, weights: Vec<u64>) -> impl Fn(&FixedBitSet) -> f64 + '_ {
        let total: u64 = weights.iter().sum();
        move |set: &FixedBitSet| {
            if total == 0 {
                return 1.0;
            }
            let hit: u64 = system
                .subsets()
                .iter()
                .zip(&weights)
                .filter(|(f, _)| f.intersects(set))
                .map(|(_, w)| *w)
                .sum();
            hit as f64 / total as f64
        }
    }

    #[test]
    fn epsilon_zero_matches_exact_mmcs() {
        let sys = SetSystem::from_indices(5, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4]]);
        let weights = vec![1u64; sys.len()];
        let score = coverage_score(&sys, weights);
        let cfg = ApproxEnumConfig::new(0.0);
        let approx = approx_minimal_hitting_sets(&sys, &score, &cfg);
        let exact = brute_force_minimal_hitting_sets(&sys);
        assert_eq!(as_sorted_vecs(&approx), as_sorted_vecs(&exact));
    }

    #[test]
    fn allows_missing_low_weight_subsets() {
        // Subsets: {0} (weight 9), {1} (weight 1). With ε = 0.2 we may miss {1}.
        let sys = SetSystem::from_indices(2, &[&[0], &[1]]);
        let score = coverage_score(&sys, vec![9, 1]);
        let cfg = ApproxEnumConfig::new(0.2);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        // {0} misses only 10% of the weight -> approximate and minimal.
        assert_eq!(as_sorted_vecs(&found), vec![vec![0]]);
    }

    #[test]
    fn empty_set_emitted_when_threshold_is_loose() {
        let sys = SetSystem::from_indices(3, &[&[0], &[1], &[2]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(1.0);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        assert_eq!(found.len(), 1);
        assert!(found[0].is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_instances_all_strategies() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let m = rng.gen_range(3..8);
            let k = rng.gen_range(1..7);
            let mut subsets = Vec::new();
            let mut weights = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
                weights.push(rng.gen_range(1..5) as u64);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, weights);
            let epsilon = [0.0, 0.1, 0.25, 0.5][trial % 4];
            let expected = brute_force_minimal_approx_hitting_sets(m, &score, epsilon);
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
                BranchStrategy::First,
            ] {
                let cfg = ApproxEnumConfig::new(epsilon).with_strategy(strategy);
                let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
                assert_eq!(
                    as_sorted_vecs(&found),
                    as_sorted_vecs(&expected),
                    "trial {trial}, ε={epsilon}, strategy {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn will_cover_pruning_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let m = rng.gen_range(3..7);
            let k = rng.gen_range(2..6);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.5) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(0);
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let on = approx_minimal_hitting_sets(
                &sys,
                &score,
                &ApproxEnumConfig::new(0.3).with_will_cover_pruning(true),
            );
            let off = approx_minimal_hitting_sets(
                &sys,
                &score,
                &ApproxEnumConfig::new(0.3).with_will_cover_pruning(false),
            );
            assert_eq!(as_sorted_vecs(&on), as_sorted_vecs(&off));
        }
    }

    #[test]
    fn element_groups_suppress_same_group_pairs() {
        // Elements 0 and 1 are in the same group; subsets force hitting both
        // {0,1}-ish structures. Without groups the pair {0,1} could appear;
        // with groups it must not.
        let sys = SetSystem::from_indices(4, &[&[0, 2], &[1, 3]]);
        let score = coverage_score(&sys, vec![1, 1]);
        let groups = vec![0, 0, 1, 2];
        let cfg = ApproxEnumConfig::new(0.0).with_element_groups(&groups);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        for s in &found {
            let v = s.to_vec();
            assert!(
                !(v.contains(&0) && v.contains(&1)),
                "same-group elements 0 and 1 must not co-occur: {v:?}"
            );
        }
        // The group-free solutions {0,1} is replaced by solutions using 2/3.
        assert!(found.iter().any(|s| s.to_vec() == vec![0, 3]));
        assert!(found.iter().any(|s| s.to_vec() == vec![1, 2]));
        assert!(found.iter().any(|s| s.to_vec() == vec![2, 3]));
    }

    #[test]
    fn max_results_stops_early() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(0.0).with_max_results(3);
        let mut seen = 0usize;
        let stats = enumerate_approx_minimal_hitting_sets(&sys, &score, &cfg, |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 3);
        assert_eq!(stats.emitted, 3);
    }

    #[test]
    fn max_results_reports_truncation_via_outcome() {
        use crate::search::TruncationReason;
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(0.0)
            .with_max_results(3)
            .with_order(SearchOrder::ShortestFirst);
        let (stats, outcome) =
            search_approx_minimal_hitting_sets(&sys, &score, &cfg, &mut |_: &FixedBitSet| true);
        assert_eq!(stats.emitted, 3);
        assert_eq!(
            outcome.truncation.map(|t| t.reason),
            Some(TruncationReason::MaxEmitted)
        );
    }

    #[test]
    fn shortest_first_returns_the_same_family() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let m = rng.gen_range(4..8);
            let k = rng.gen_range(2..6);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let dfs = approx_minimal_hitting_sets(&sys, &score, &ApproxEnumConfig::new(0.2));
            let sf = approx_minimal_hitting_sets(
                &sys,
                &score,
                &ApproxEnumConfig::new(0.2).with_order(SearchOrder::ShortestFirst),
            );
            assert_eq!(as_sorted_vecs(&dfs), as_sorted_vecs(&sf));
            let sizes: Vec<usize> = sf.iter().map(|s| s.len()).collect();
            let mut sorted = sizes.clone();
            sorted.sort_unstable();
            assert_eq!(sizes, sorted, "shortest-first emission must be sorted");
        }
    }

    #[test]
    fn stats_are_populated() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(0.0);
        let stats = enumerate_approx_minimal_hitting_sets(&sys, &score, &cfg, |_| true);
        assert!(stats.recursive_calls > 0);
        assert!(stats.score_evaluations > 0);
        assert_eq!(stats.emitted, 3);
    }

    #[test]
    fn emits_each_result_exactly_once() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..15 {
            let m = rng.gen_range(4..8);
            let k = rng.gen_range(2..6);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.45) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let cfg = ApproxEnumConfig::new(0.2);
            let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
            let mut sorted = as_sorted_vecs(&found);
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), before, "duplicate outputs detected");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_rejected() {
        let sys = SetSystem::from_indices(2, &[&[0]]);
        let score = coverage_score(&sys, vec![1]);
        approx_minimal_hitting_sets(&sys, &score, &ApproxEnumConfig::new(-0.1));
    }

    #[test]
    #[should_panic(expected = "element_groups length")]
    fn wrong_group_length_rejected() {
        let sys = SetSystem::from_indices(3, &[&[0]]);
        let score = coverage_score(&sys, vec![1]);
        let groups = vec![0, 1];
        approx_minimal_hitting_sets(
            &sys,
            &score,
            &ApproxEnumConfig::new(0.1).with_element_groups(&groups),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_brute_force(
            subsets in proptest::collection::vec(proptest::collection::vec(0usize..6, 1..4), 1..5),
            eps_percent in 0u32..60,
        ) {
            let m = 6;
            let refs: Vec<&[usize]> = subsets.iter().map(|s| s.as_slice()).collect();
            let sys = SetSystem::from_indices(m, &refs);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let epsilon = eps_percent as f64 / 100.0;
            let expected = brute_force_minimal_approx_hitting_sets(m, &score, epsilon);
            let found = approx_minimal_hitting_sets(&sys, &score, &ApproxEnumConfig::new(epsilon));
            prop_assert_eq!(as_sorted_vecs(&found), as_sorted_vecs(&expected));
        }
    }
}
