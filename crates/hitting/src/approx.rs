//! Approximate minimal hitting-set enumeration — the generic core of
//! `ADCEnum` (Figures 4 and 5 of the VLDB 2020 ADC paper).
//!
//! Compared to MMCS, three things change:
//!
//! 1. **Base case.** A partial solution is emitted as soon as
//!    `1 − f(S) ≤ ε` *and* removing any single element breaks that bound
//!    (the explicit `IsMinimal` check — criticality alone no longer implies
//!    minimality because an approximate hitting set may leave subsets
//!    uncovered).
//! 2. **A second branch per step** that *does not* hit the chosen subset
//!    `F`. To keep the recursion finite, every subset that can no longer be
//!    hit by the remaining candidates is marked `canHit = false`
//!    (`UpdateCanCover`) and is never selected again; the branch is only
//!    explored if adding the whole candidate list would reach the threshold
//!    (`WillCover` pruning, justified by monotonicity).
//! 3. **Redundant-element suppression.** When element groups are supplied
//!    (predicates differing only by operator), adding one element removes the
//!    rest of its group from the candidate list for that branch, suppressing
//!    trivial constraints.
//!
//! The scoring function is supplied by the caller and must satisfy the
//! monotonicity and indifference-to-redundancy axioms for the enumeration to
//! be complete (see `adc-approx`).

use crate::{BranchStrategy, SetSystem};
use adc_data::FixedBitSet;

/// Configuration for [`enumerate_approx_minimal_hitting_sets`].
#[derive(Debug, Clone)]
pub struct ApproxEnumConfig<'a> {
    /// Approximation threshold ε ≥ 0: emit `S` when `1 − f(S) ≤ ε`.
    pub epsilon: f64,
    /// Branching strategy for choosing the next subset to hit.
    pub strategy: BranchStrategy,
    /// Optional structure-group id per element; when an element enters the
    /// partial solution, the rest of its group leaves the candidate list for
    /// that branch (the paper's `RemoveRedundantPreds`).
    pub element_groups: Option<&'a [usize]>,
    /// Enable the `WillCover` pruning of the non-hitting branch (line 9 of
    /// Figure 4). Disabling it is only useful for ablation studies.
    pub will_cover_pruning: bool,
    /// Stop after emitting this many results (`None` = unlimited).
    pub max_results: Option<usize>,
}

impl<'a> ApproxEnumConfig<'a> {
    /// Default configuration for a given threshold.
    pub fn new(epsilon: f64) -> Self {
        ApproxEnumConfig {
            epsilon,
            strategy: BranchStrategy::default(),
            element_groups: None,
            will_cover_pruning: true,
            max_results: None,
        }
    }

    /// Set the branch strategy.
    pub fn with_strategy(mut self, strategy: BranchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Provide element structure groups.
    pub fn with_element_groups(mut self, groups: &'a [usize]) -> Self {
        self.element_groups = Some(groups);
        self
    }

    /// Enable or disable the `WillCover` pruning.
    pub fn with_will_cover_pruning(mut self, enabled: bool) -> Self {
        self.will_cover_pruning = enabled;
        self
    }

    /// Limit the number of emitted results.
    pub fn with_max_results(mut self, max: usize) -> Self {
        self.max_results = Some(max);
        self
    }
}

/// Counters describing one enumeration run (used by the benchmark harness
/// and the ablation studies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproxEnumStats {
    /// Number of recursive calls.
    pub recursive_calls: u64,
    /// Number of scoring-function evaluations.
    pub score_evaluations: u64,
    /// Number of emitted minimal approximate hitting sets.
    pub emitted: u64,
}

/// Enumerate all minimal approximate hitting sets of `system` w.r.t. the
/// scoring function `score` and the threshold in `config`.
///
/// `score(X)` must return `f(X) ∈ [0, 1]`; the callback receives each
/// minimal set and may return `false` to stop early. Returns run statistics.
pub fn enumerate_approx_minimal_hitting_sets<S, F>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
    mut callback: F,
) -> ApproxEnumStats
where
    S: Fn(&FixedBitSet) -> f64,
    F: FnMut(&FixedBitSet) -> bool,
{
    assert!(config.epsilon >= 0.0, "epsilon must be non-negative");
    if let Some(groups) = config.element_groups {
        assert_eq!(
            groups.len(),
            system.num_elements(),
            "element_groups length must equal the number of elements"
        );
    }
    let mut state = EnumState::new(system, &score, config);
    state.run(&mut callback);
    state.stats
}

/// Convenience wrapper collecting the results into a vector.
pub fn approx_minimal_hitting_sets<S>(
    system: &SetSystem,
    score: S,
    config: &ApproxEnumConfig<'_>,
) -> Vec<FixedBitSet>
where
    S: Fn(&FixedBitSet) -> f64,
{
    let mut out = Vec::new();
    enumerate_approx_minimal_hitting_sets(system, score, config, |s| {
        out.push(s.clone());
        true
    });
    out
}

struct EnumState<'a, S: Fn(&FixedBitSet) -> f64> {
    system: &'a SetSystem,
    score: &'a S,
    config: &'a ApproxEnumConfig<'a>,
    s: Vec<usize>,
    s_set: FixedBitSet,
    cand: FixedBitSet,
    uncov: Vec<usize>,
    crit: Vec<Vec<usize>>,
    can_hit: Vec<bool>,
    stats: ApproxEnumStats,
    stopped: bool,
}

struct CritUndo {
    element: usize,
    covered: Vec<usize>,
    removed_from_crit: Vec<(usize, usize)>,
}

impl<'a, S: Fn(&FixedBitSet) -> f64> EnumState<'a, S> {
    fn new(system: &'a SetSystem, score: &'a S, config: &'a ApproxEnumConfig<'a>) -> Self {
        let m = system.num_elements();
        EnumState {
            system,
            score,
            config,
            s: Vec::new(),
            s_set: FixedBitSet::new(m),
            cand: FixedBitSet::full(m),
            uncov: (0..system.len()).collect(),
            crit: vec![Vec::new(); m],
            can_hit: vec![true; system.len()],
            stats: ApproxEnumStats::default(),
            stopped: false,
        }
    }

    fn eval(&mut self, set: &FixedBitSet) -> f64 {
        self.stats.score_evaluations += 1;
        (self.score)(set)
    }

    fn meets_threshold(&mut self, set: &FixedBitSet) -> bool {
        1.0 - self.eval(set) <= self.config.epsilon
    }

    /// `IsMinimal` of Figure 5: no single-element removal stays within ε.
    fn is_minimal(&mut self) -> bool {
        let elements = self.s.clone();
        for e in elements {
            let mut smaller = self.s_set.clone();
            smaller.remove(e);
            if self.meets_threshold(&smaller) {
                return false;
            }
        }
        true
    }

    /// `WillCover` of Figure 5: could adding every remaining candidate reach ε?
    fn will_cover(&mut self) -> bool {
        let union = self.s_set.union(&self.cand);
        self.meets_threshold(&union)
    }

    fn emit(&mut self, callback: &mut dyn FnMut(&FixedBitSet) -> bool) {
        self.stats.emitted += 1;
        if !callback(&self.s_set) {
            self.stopped = true;
        }
        if let Some(max) = self.config.max_results {
            if self.stats.emitted >= max as u64 {
                self.stopped = true;
            }
        }
    }

    fn run(&mut self, callback: &mut dyn FnMut(&FixedBitSet) -> bool) {
        if self.stopped {
            return;
        }
        self.stats.recursive_calls += 1;

        // Base case: the partial solution already satisfies the threshold.
        // By monotonicity no strict superset can be minimal, so return either way.
        let current = self.s_set.clone();
        if self.meets_threshold(&current) {
            if self.is_minimal() {
                self.emit(callback);
            }
            return;
        }

        // Choose an uncovered, still-hittable subset.
        let Some(chosen) = self.choose_subset() else {
            return;
        };
        let f = self.system.subsets()[chosen].clone();

        // ---- Branch 1: do NOT hit F. ----
        let removed_from_cand: Vec<usize> = self.cand.intersection(&f).to_vec();
        for &e in &removed_from_cand {
            self.cand.remove(e);
        }
        let mut can_hit_cleared: Vec<usize> = Vec::new();
        for &fi in &self.uncov {
            if self.can_hit[fi] && !self.system.subsets()[fi].intersects(&self.cand) {
                self.can_hit[fi] = false;
                can_hit_cleared.push(fi);
            }
        }
        let explore = !self.config.will_cover_pruning || self.will_cover();
        if explore {
            self.run(callback);
        }
        for fi in can_hit_cleared {
            self.can_hit[fi] = true;
        }
        for &e in &removed_from_cand {
            self.cand.insert(e);
        }
        if self.stopped {
            return;
        }

        // ---- Branch 2: hit F with each admissible candidate. ----
        let c: Vec<usize> = self.cand.intersection(&f).to_vec();
        for &e in &c {
            self.cand.remove(e);
        }
        let mut returned_to_cand: Vec<usize> = Vec::with_capacity(c.len());
        for &e in &c {
            let undo = self.update_crit_uncov(e);
            let all_critical = self.s.iter().all(|&u| !self.crit[u].is_empty());
            if all_critical {
                // RemoveRedundantPreds: drop same-group elements for this branch.
                let mut group_removed: Vec<usize> = Vec::new();
                if let Some(groups) = self.config.element_groups {
                    let g = groups[e];
                    for (other, &og) in groups.iter().enumerate() {
                        if other != e && og == g && self.cand.contains(other) {
                            self.cand.remove(other);
                            group_removed.push(other);
                        }
                    }
                }
                self.s.push(e);
                self.s_set.insert(e);
                self.run(callback);
                self.s.pop();
                self.s_set.remove(e);
                for other in group_removed {
                    self.cand.insert(other);
                }
                returned_to_cand.push(e);
                self.cand.insert(e);
            }
            self.undo_crit_uncov(undo);
            if self.stopped {
                break;
            }
        }
        for &e in &returned_to_cand {
            self.cand.remove(e);
        }
        for &e in &c {
            self.cand.insert(e);
        }
    }

    fn choose_subset(&self) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None;
        for &fi in &self.uncov {
            if !self.can_hit[fi] {
                continue;
            }
            let inter = self.system.subsets()[fi].intersection_count(&self.cand);
            best = match best {
                None => Some((fi, inter)),
                Some((_, b)) => match self.config.strategy {
                    BranchStrategy::MaxIntersection if inter > b => Some((fi, inter)),
                    BranchStrategy::MinIntersection if inter < b => Some((fi, inter)),
                    _ => best,
                },
            };
            if self.config.strategy == BranchStrategy::First && best.is_some() {
                break;
            }
        }
        best.map(|(fi, _)| fi)
    }

    fn update_crit_uncov(&mut self, e: usize) -> CritUndo {
        let mut covered = Vec::new();
        let mut kept = Vec::with_capacity(self.uncov.len());
        for &fi in &self.uncov {
            if self.system.subsets()[fi].contains(e) {
                covered.push(fi);
                self.crit[e].push(fi);
            } else {
                kept.push(fi);
            }
        }
        self.uncov = kept;

        let mut removed_from_crit = Vec::new();
        for &u in &self.s {
            let subsets = self.system.subsets();
            self.crit[u].retain(|&fi| {
                if subsets[fi].contains(e) {
                    removed_from_crit.push((u, fi));
                    false
                } else {
                    true
                }
            });
        }
        CritUndo {
            element: e,
            covered,
            removed_from_crit,
        }
    }

    fn undo_crit_uncov(&mut self, undo: CritUndo) {
        for _ in 0..undo.covered.len() {
            self.crit[undo.element].pop();
        }
        self.uncov.extend(undo.covered);
        for (u, fi) in undo.removed_from_crit {
            self.crit[u].push(fi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::{brute_force_minimal_approx_hitting_sets, brute_force_minimal_hitting_sets};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn as_sorted_vecs(sets: &[FixedBitSet]) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = sets.iter().map(|s| s.to_vec()).collect();
        v.sort();
        v
    }

    /// A weighted coverage score: fraction of subset weight hit. Monotone and
    /// indifferent to redundancy by construction — the same family `f1`
    /// belongs to.
    fn coverage_score(system: &SetSystem, weights: Vec<u64>) -> impl Fn(&FixedBitSet) -> f64 + '_ {
        let total: u64 = weights.iter().sum();
        move |set: &FixedBitSet| {
            if total == 0 {
                return 1.0;
            }
            let hit: u64 = system
                .subsets()
                .iter()
                .zip(&weights)
                .filter(|(f, _)| f.intersects(set))
                .map(|(_, w)| *w)
                .sum();
            hit as f64 / total as f64
        }
    }

    #[test]
    fn epsilon_zero_matches_exact_mmcs() {
        let sys = SetSystem::from_indices(5, &[&[0, 1], &[1, 2], &[2, 3], &[3, 4]]);
        let weights = vec![1u64; sys.len()];
        let score = coverage_score(&sys, weights);
        let cfg = ApproxEnumConfig::new(0.0);
        let approx = approx_minimal_hitting_sets(&sys, &score, &cfg);
        let exact = brute_force_minimal_hitting_sets(&sys);
        assert_eq!(as_sorted_vecs(&approx), as_sorted_vecs(&exact));
    }

    #[test]
    fn allows_missing_low_weight_subsets() {
        // Subsets: {0} (weight 9), {1} (weight 1). With ε = 0.2 we may miss {1}.
        let sys = SetSystem::from_indices(2, &[&[0], &[1]]);
        let score = coverage_score(&sys, vec![9, 1]);
        let cfg = ApproxEnumConfig::new(0.2);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        // {0} misses only 10% of the weight -> approximate and minimal.
        assert_eq!(as_sorted_vecs(&found), vec![vec![0]]);
    }

    #[test]
    fn empty_set_emitted_when_threshold_is_loose() {
        let sys = SetSystem::from_indices(3, &[&[0], &[1], &[2]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(1.0);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        assert_eq!(found.len(), 1);
        assert!(found[0].is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_instances_all_strategies() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..25 {
            let m = rng.gen_range(3..8);
            let k = rng.gen_range(1..7);
            let mut subsets = Vec::new();
            let mut weights = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.4) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
                weights.push(rng.gen_range(1..5) as u64);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, weights);
            let epsilon = [0.0, 0.1, 0.25, 0.5][trial % 4];
            let expected = brute_force_minimal_approx_hitting_sets(m, &score, epsilon);
            for strategy in [
                BranchStrategy::MaxIntersection,
                BranchStrategy::MinIntersection,
                BranchStrategy::First,
            ] {
                let cfg = ApproxEnumConfig::new(epsilon).with_strategy(strategy);
                let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
                assert_eq!(
                    as_sorted_vecs(&found),
                    as_sorted_vecs(&expected),
                    "trial {trial}, ε={epsilon}, strategy {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn will_cover_pruning_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let m = rng.gen_range(3..7);
            let k = rng.gen_range(2..6);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.5) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(0);
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let on = approx_minimal_hitting_sets(
                &sys,
                &score,
                &ApproxEnumConfig::new(0.3).with_will_cover_pruning(true),
            );
            let off = approx_minimal_hitting_sets(
                &sys,
                &score,
                &ApproxEnumConfig::new(0.3).with_will_cover_pruning(false),
            );
            assert_eq!(as_sorted_vecs(&on), as_sorted_vecs(&off));
        }
    }

    #[test]
    fn element_groups_suppress_same_group_pairs() {
        // Elements 0 and 1 are in the same group; subsets force hitting both
        // {0,1}-ish structures. Without groups the pair {0,1} could appear;
        // with groups it must not.
        let sys = SetSystem::from_indices(4, &[&[0, 2], &[1, 3]]);
        let score = coverage_score(&sys, vec![1, 1]);
        let groups = vec![0, 0, 1, 2];
        let cfg = ApproxEnumConfig::new(0.0).with_element_groups(&groups);
        let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
        for s in &found {
            let v = s.to_vec();
            assert!(
                !(v.contains(&0) && v.contains(&1)),
                "same-group elements 0 and 1 must not co-occur: {v:?}"
            );
        }
        // The group-free solutions {0,1} is replaced by solutions using 2/3.
        assert!(found.iter().any(|s| s.to_vec() == vec![0, 3]));
        assert!(found.iter().any(|s| s.to_vec() == vec![1, 2]));
        assert!(found.iter().any(|s| s.to_vec() == vec![2, 3]));
    }

    #[test]
    fn max_results_stops_early() {
        let sys = SetSystem::from_indices(6, &[&[0, 1], &[2, 3], &[4, 5]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(0.0).with_max_results(3);
        let mut seen = 0usize;
        let stats = enumerate_approx_minimal_hitting_sets(&sys, &score, &cfg, |_| {
            seen += 1;
            true
        });
        assert_eq!(seen, 3);
        assert_eq!(stats.emitted, 3);
    }

    #[test]
    fn stats_are_populated() {
        let sys = SetSystem::from_indices(4, &[&[0, 1], &[1, 2], &[2, 3]]);
        let score = coverage_score(&sys, vec![1, 1, 1]);
        let cfg = ApproxEnumConfig::new(0.0);
        let stats = enumerate_approx_minimal_hitting_sets(&sys, &score, &cfg, |_| true);
        assert!(stats.recursive_calls > 0);
        assert!(stats.score_evaluations > 0);
        assert_eq!(stats.emitted, 3);
    }

    #[test]
    fn emits_each_result_exactly_once() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..15 {
            let m = rng.gen_range(4..8);
            let k = rng.gen_range(2..6);
            let mut subsets = Vec::new();
            for _ in 0..k {
                let mut s = FixedBitSet::new(m);
                for e in 0..m {
                    if rng.gen_bool(0.45) {
                        s.insert(e);
                    }
                }
                if s.is_empty() {
                    s.insert(rng.gen_range(0..m));
                }
                subsets.push(s);
            }
            let sys = SetSystem::new(m, subsets);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let cfg = ApproxEnumConfig::new(0.2);
            let found = approx_minimal_hitting_sets(&sys, &score, &cfg);
            let mut sorted = as_sorted_vecs(&found);
            let before = sorted.len();
            sorted.dedup();
            assert_eq!(sorted.len(), before, "duplicate outputs detected");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be non-negative")]
    fn negative_epsilon_rejected() {
        let sys = SetSystem::from_indices(2, &[&[0]]);
        let score = coverage_score(&sys, vec![1]);
        approx_minimal_hitting_sets(&sys, &score, &ApproxEnumConfig::new(-0.1));
    }

    #[test]
    #[should_panic(expected = "element_groups length")]
    fn wrong_group_length_rejected() {
        let sys = SetSystem::from_indices(3, &[&[0]]);
        let score = coverage_score(&sys, vec![1]);
        let groups = vec![0, 1];
        approx_minimal_hitting_sets(
            &sys,
            &score,
            &ApproxEnumConfig::new(0.1).with_element_groups(&groups),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_matches_brute_force(
            subsets in proptest::collection::vec(proptest::collection::vec(0usize..6, 1..4), 1..5),
            eps_percent in 0u32..60,
        ) {
            let m = 6;
            let refs: Vec<&[usize]> = subsets.iter().map(|s| s.as_slice()).collect();
            let sys = SetSystem::from_indices(m, &refs);
            let score = coverage_score(&sys, vec![1; sys.len()]);
            let epsilon = eps_percent as f64 / 100.0;
            let expected = brute_force_minimal_approx_hitting_sets(m, &score, epsilon);
            let found = approx_minimal_hitting_sets(&sys, &score, &ApproxEnumConfig::new(epsilon));
            prop_assert_eq!(as_sorted_vecs(&found), as_sorted_vecs(&expected));
        }
    }
}
